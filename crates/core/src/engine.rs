//! The query-session layer: [`QueryEngine`].
//!
//! Every query entry point in this crate ([`crate::ptq`],
//! [`crate::ptq_tree`], [`crate::topk`], [`crate::path_ptq`],
//! [`crate::keyword`]) evaluates through this module. A [`QueryEngine`]
//! owns one session's data — `(source schema, target schema,
//! PossibleMappings, BlockTree, Document)` — plus derived state built once
//! per session instead of once per query:
//!
//! * a [`SymbolTable`] interning every label of both schemas and the
//!   document, so rewriting and filtering compare dense `u32` symbols,
//!   never strings;
//! * per-symbol target-node and document-label inverted indexes;
//! * per-symbol *relevance bitsets* over the mapping set, turning the
//!   paper's `filter_mappings` into a handful of bitwise ANDs;
//! * a memoized rewrite cache keyed by `(query, mapping)` and a relevant-
//!   mapping cache keyed by query, which make repeated-query workloads
//!   (the service scenario) skip rewriting entirely.
//!
//! The legacy free functions remain as thin wrappers that build a
//! throwaway session state, so their results — and the engine's — are
//! identical by construction; the equivalence is additionally pinned by
//! `tests/engine_equivalence.rs`.
//!
//! With the `parallel` feature, independent per-mapping / per-c-block /
//! per-rewrite-group evaluations run on scoped threads (see the
//! crate-internal `par_run`).

use crate::aggregate::{self, AggFunc, AggRow, AggregateResult};
use crate::api::{ExecStats, Query, QueryResponse};
use crate::block_tree::{BlockTree, BlockTreeConfig};
use crate::error::UxmError;
use crate::exec::{self, Explain, ProgramCache, ProgramCacheStats, SetMode};
use crate::keyword::{KeywordAnswer, KeywordError};
use crate::mapping::{MappingId, MappingRef, PossibleMappings};
use crate::planner::{self, Evaluator, Plan, PlannerStats};
use crate::ptq::{PtqAnswer, PtqResult};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use uxm_twig::structural_join::structural_join;
use uxm_twig::{match_twig, Axis, PatternNodeId, ResolvedPattern, TwigMatch, TwigPattern};
use uxm_xml::{DocNodeId, Document, LabelId, PathIndex, Schema, SchemaNodeId, Symbol, SymbolTable};

// ---------------------------------------------------------------------
// parallel scaffolding

/// Runs `f(0..n)` and collects results in index order.
///
/// With the `parallel` feature, work items are pulled off a shared atomic
/// counter by `min(n, available_parallelism)` scoped threads; without it,
/// this is a plain sequential map. Either way the output order (and hence
/// every result in this crate) is deterministic.
pub(crate) fn par_run<R: Send>(n: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    #[cfg(feature = "parallel")]
    {
        let threads = std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1)
            .min(n);
        if threads > 1 {
            let next = std::sync::atomic::AtomicUsize::new(0);
            let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut local = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= n {
                                    break;
                                }
                                local.push((i, f(i)));
                            }
                            local
                        })
                    })
                    .collect();
                for h in handles {
                    for (i, r) in h.join().expect("engine worker panicked") {
                        out[i] = Some(r);
                    }
                }
            });
            return out
                .into_iter()
                .map(|r| r.expect("all indices run"))
                .collect();
        }
    }
    (0..n).map(f).collect()
}

// ---------------------------------------------------------------------
// relevance bitsets

/// A fixed-width bitset over mapping ids.
#[derive(Clone, Debug, PartialEq, Eq)]
struct MappingBits {
    words: Vec<u64>,
    len: usize,
}

impl MappingBits {
    #[cfg(test)]
    fn empty(len: usize) -> MappingBits {
        MappingBits {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    fn full(len: usize) -> MappingBits {
        let mut b = MappingBits {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        // Clear the tail beyond `len`.
        if !len.is_multiple_of(64) {
            if let Some(last) = b.words.last_mut() {
                *last = (1u64 << (len % 64)) - 1;
            }
        }
        b
    }

    #[cfg(test)]
    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    fn and_assign(&mut self, other: &[u64]) {
        for (w, o) in self.words.iter_mut().zip(other) {
            *w &= o;
        }
    }

    fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Set bits in ascending order, as mapping ids.
    fn ids(&self) -> Vec<MappingId> {
        let mut out = Vec::new();
        for (wi, &w) in self.words.iter().enumerate() {
            let mut w = w;
            while w != 0 {
                let bit = w.trailing_zeros() as usize;
                out.push(MappingId((wi * 64 + bit) as u32));
                w &= w - 1;
            }
        }
        out
    }
}

/// Per-symbol relevance bitsets over the mapping set, stored flat — one
/// allocation for all symbols, which keeps throwaway session construction
/// (the legacy free-function path) cheap.
struct RelevanceIndex {
    words_per_sym: usize,
    words: Vec<u64>,
}

impl RelevanceIndex {
    fn new(n_syms: usize, n_mappings: usize) -> RelevanceIndex {
        let words_per_sym = n_mappings.div_ceil(64);
        RelevanceIndex {
            words_per_sym,
            words: vec![0; n_syms * words_per_sym],
        }
    }

    #[inline]
    fn set(&mut self, sym: Symbol, mapping: usize) {
        self.words[sym.idx() * self.words_per_sym + mapping / 64] |= 1 << (mapping % 64);
    }

    /// The bitset words for `sym`'s label.
    #[inline]
    fn of(&self, sym: Symbol) -> &[u64] {
        let start = sym.idx() * self.words_per_sym;
        &self.words[start..start + self.words_per_sym]
    }
}

// ---------------------------------------------------------------------
// sharded cache maps

/// Lock shards per cache. Queries hash to a shard, so concurrent readers
/// (and writers) of *different* queries never contend on a lock; readers
/// of the same query share a read lock.
const CACHE_SHARDS: usize = 16;

/// A query-string-keyed map split across [`CACHE_SHARDS`] `RwLock`ed
/// shards. This is what makes [`SessionState`] — and hence
/// [`QueryEngine`] — usable from many threads at once: the old
/// single-`Mutex` caches serialized every cache probe.
pub(crate) struct Sharded<V> {
    shards: Vec<RwLock<HashMap<String, V>>>,
}

impl<V> Sharded<V> {
    pub(crate) fn new() -> Sharded<V> {
        Sharded {
            shards: (0..CACHE_SHARDS).map(|_| RwLock::default()).collect(),
        }
    }

    fn shard(&self, key: &str) -> &RwLock<HashMap<String, V>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[h.finish() as usize % CACHE_SHARDS]
    }

    /// Applies `f` to `key`'s entry under the shard's read lock.
    pub(crate) fn read<R>(&self, key: &str, f: impl FnOnce(&V) -> R) -> Option<R> {
        self.shard(key).read().expect("cache lock").get(key).map(f)
    }

    /// Updates `key`'s entry (default-created if absent) under the shard's
    /// write lock. A shard holding `cap` distinct queries is cleared
    /// wholesale before a *new* query is admitted — crude, but it bounds a
    /// long-lived session serving unbounded ad-hoc queries, and a clear
    /// only costs re-deriving rewrites for queries still in rotation.
    pub(crate) fn update(&self, key: &str, cap: usize, f: impl FnOnce(&mut V))
    where
        V: Default,
    {
        let mut shard = self.shard(key).write().expect("cache lock");
        if shard.len() >= cap && !shard.contains_key(key) {
            shard.clear();
        }
        f(shard.entry(key.to_string()).or_default())
    }
}

// ---------------------------------------------------------------------
// session state

/// Hit/miss counters for the per-session caches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `(query, mapping)` rewrite cache hits.
    pub rewrite_hits: u64,
    /// `(query, mapping)` rewrite cache misses (computed entries).
    pub rewrite_misses: u64,
    /// Relevant-mapping cache hits.
    pub relevant_hits: u64,
    /// Relevant-mapping cache misses.
    pub relevant_misses: u64,
}

/// One query node as the session sees it: its interned label symbol
/// (`None` when the label occurs in neither schema nor the document),
/// and whether it is the wildcard `*` — which constrains nothing: it
/// never filters mappings, and its rewrite set is empty-but-fine (every
/// document node is a candidate at match time).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct QuerySym {
    /// The interned label, for labelled nodes known to the session.
    pub(crate) sym: Option<Symbol>,
    /// True for `*` nodes.
    pub(crate) wild: bool,
}

impl QuerySym {
    /// A wildcard query node.
    pub(crate) const WILD: QuerySym = QuerySym {
        sym: None,
        wild: true,
    };

    /// A labelled query node.
    pub(crate) fn label(sym: Option<Symbol>) -> QuerySym {
        QuerySym { sym, wild: false }
    }
}

/// Rewrite sets per query node — interned labels, sorted and deduplicated.
type SymbolSets = Arc<Vec<Vec<Symbol>>>;
/// Node-granularity rewrite sets per query node.
type NodeSets = Arc<Vec<Vec<SchemaNodeId>>>;

/// Everything derivable from `(PossibleMappings, Document)` that query
/// evaluation wants precomputed. Built once per [`QueryEngine`]; the
/// legacy free functions build a throwaway one per call.
pub(crate) struct SessionState {
    symbols: SymbolTable,
    /// Per source schema node: its label's symbol.
    source_syms: Vec<Symbol>,
    /// Per symbol: target schema nodes carrying it (pre-order).
    target_nodes_by_sym: Vec<Vec<SchemaNodeId>>,
    /// Per symbol: the document's interned id for that label, if present.
    sym_doc_label: Vec<Option<LabelId>>,
    /// Per symbol: mappings covering ≥1 target node with that label.
    relevance: RelevanceIndex,
    /// Per symbol: the total document posting-list length of every source
    /// label this (target) label can rewrite to under any mapping — the
    /// measured upper bound of the candidate stream a query node with
    /// this label feeds the twig matcher. The planner reads the minimum
    /// over a query's nodes.
    rewrite_postings: Vec<usize>,
    n_mappings: usize,
    rewrite_cache: Sharded<HashMap<MappingId, Option<SymbolSets>>>,
    node_rewrite_cache: Sharded<HashMap<MappingId, Option<NodeSets>>>,
    relevant_cache: Sharded<Arc<Vec<MappingId>>>,
    rewrite_hits: AtomicU64,
    rewrite_misses: AtomicU64,
    relevant_hits: AtomicU64,
    relevant_misses: AtomicU64,
}

impl SessionState {
    pub(crate) fn build(pm: &PossibleMappings, doc: &Document) -> SessionState {
        let mut symbols = SymbolTable::new();
        let source_syms: Vec<Symbol> = pm
            .source
            .ids()
            .map(|id| symbols.intern(pm.source.label(id)))
            .collect();
        let target_syms: Vec<Symbol> = pm
            .target
            .ids()
            .map(|id| symbols.intern(pm.target.label(id)))
            .collect();
        let doc_label_syms: Vec<(Symbol, LabelId)> = (0..doc.label_count() as u32)
            .map(|l| (symbols.intern(doc.label_name(LabelId(l))), LabelId(l)))
            .collect();

        let mut target_nodes_by_sym = vec![Vec::new(); symbols.len()];
        for (id, &sym) in pm.target.ids().zip(&target_syms) {
            target_nodes_by_sym[sym.idx()].push(id);
        }

        let mut sym_doc_label = vec![None; symbols.len()];
        for (sym, l) in doc_label_syms {
            sym_doc_label[sym.idx()] = Some(l);
        }

        let n_mappings = pm.len();
        let mut relevance = RelevanceIndex::new(symbols.len(), n_mappings);
        for (mid, m) in pm.iter() {
            for &(_, t) in m.pairs {
                relevance.set(target_syms[t.idx()], mid.idx());
            }
        }

        // True per-label posting lengths: for every target symbol, the
        // deduplicated source labels it can rewrite to, priced by their
        // document posting lists.
        let mut rewrite_syms: Vec<Vec<Symbol>> = vec![Vec::new(); symbols.len()];
        for (_, m) in pm.iter() {
            for &(s, t) in m.pairs {
                rewrite_syms[target_syms[t.idx()].idx()].push(source_syms[s.idx()]);
            }
        }
        let rewrite_postings: Vec<usize> = rewrite_syms
            .into_iter()
            .map(|mut v| {
                v.sort_unstable();
                v.dedup();
                v.iter()
                    .map(|sym| {
                        sym_doc_label[sym.idx()].map_or(0, |l| doc.nodes_with_label_id(l).len())
                    })
                    .sum()
            })
            .collect();

        SessionState {
            symbols,
            source_syms,
            target_nodes_by_sym,
            sym_doc_label,
            relevance,
            rewrite_postings,
            n_mappings,
            rewrite_cache: Sharded::new(),
            node_rewrite_cache: Sharded::new(),
            relevant_cache: Sharded::new(),
            rewrite_hits: AtomicU64::new(0),
            rewrite_misses: AtomicU64::new(0),
            relevant_hits: AtomicU64::new(0),
            relevant_misses: AtomicU64::new(0),
        }
    }

    /// Whether the relevant-mapping cache already holds `qstr` — the
    /// planner's cache-warmth signal. A pure probe: hit counters are
    /// untouched.
    pub(crate) fn relevant_cached(&self, qstr: &str) -> bool {
        self.relevant_cache.read(qstr, |_| ()).is_some()
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            rewrite_hits: self.rewrite_hits.load(Ordering::Relaxed),
            rewrite_misses: self.rewrite_misses.load(Ordering::Relaxed),
            relevant_hits: self.relevant_hits.load(Ordering::Relaxed),
            relevant_misses: self.relevant_misses.load(Ordering::Relaxed),
        }
    }

    /// Resident heap bytes of the precomputed session state: the
    /// relevance bitsets, per-symbol indexes, and symbol-table strings
    /// (the bounded rewrite caches are excluded).
    fn arena_bytes(&self) -> usize {
        use std::mem::size_of;
        self.relevance.words.len() * size_of::<u64>()
            + self.rewrite_postings.len() * size_of::<usize>()
            + self.source_syms.len() * size_of::<Symbol>()
            + self
                .target_nodes_by_sym
                .iter()
                .map(|v| v.len() * size_of::<SchemaNodeId>() + size_of::<Vec<SchemaNodeId>>())
                .sum::<usize>()
            + self.sym_doc_label.len() * size_of::<Option<LabelId>>()
            + self
                .symbols
                .iter()
                .map(|(_, n)| n.len() + size_of::<String>())
                .sum::<usize>()
    }

    /// Per pattern node: the session's view of it (label symbol, or
    /// wildcard).
    pub(crate) fn query_syms(&self, q: &TwigPattern) -> Vec<QuerySym> {
        q.ids()
            .map(|id| {
                let node = q.node(id);
                if node.is_wildcard() {
                    QuerySym::WILD
                } else {
                    QuerySym {
                        sym: self.symbols.resolve(&node.label),
                        wild: false,
                    }
                }
            })
            .collect()
    }

    /// Target schema nodes whose label is `sym`.
    #[inline]
    pub(crate) fn target_nodes(&self, sym: Option<Symbol>) -> &[SchemaNodeId] {
        match sym {
            Some(s) => &self.target_nodes_by_sym[s.idx()],
            None => &[],
        }
    }

    /// Number of mappings in the session — the width every liveness
    /// bitset (including a compiled program's) is sized to.
    pub(crate) fn n_mappings(&self) -> usize {
        self.n_mappings
    }

    /// The relevance bitset column for `sym` (bit `i` ⇔ mapping `i`
    /// covers a target node with that label) — what a compiled
    /// program's `and-relevance` op ANDs.
    pub(crate) fn relevance_words(&self, sym: Symbol) -> &[u64] {
        self.relevance.of(sym)
    }

    /// The source-label symbol of a source schema node (the compiled
    /// label-granularity projection).
    pub(crate) fn source_sym(&self, s: SchemaNodeId) -> Symbol {
        self.source_syms[s.idx()]
    }

    /// The document label for a raw symbol id — the VM's shape arena
    /// stores symbols as raw `u32`s.
    pub(crate) fn doc_label_raw(&self, raw: u32) -> Option<LabelId> {
        self.sym_doc_label[raw as usize]
    }

    /// Upper bound on distinct memoized queries per cache *shard* (about
    /// 1024 queries across the whole cache).
    const QUERIES_PER_SHARD: usize = 64;

    /// The paper's `filter_mappings` via bitset intersection, memoized per
    /// query. Ids come out in ascending order, matching the legacy path.
    pub(crate) fn relevant(&self, q: &TwigPattern, qstr: &str) -> Arc<Vec<MappingId>> {
        if let Some(hit) = self.relevant_cache.read(qstr, Arc::clone) {
            self.relevant_hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.relevant_misses.fetch_add(1, Ordering::Relaxed);
        let mut bits = MappingBits::full(self.n_mappings);
        for qs in self.query_syms(q) {
            // A wildcard matches under every mapping: it filters nothing.
            if qs.wild {
                continue;
            }
            match qs.sym {
                Some(s) => bits.and_assign(self.relevance.of(s)),
                None => bits.clear(),
            }
        }
        let ids = Arc::new(bits.ids());
        self.relevant_cache
            .update(qstr, Self::QUERIES_PER_SHARD, |slot| {
                *slot = Arc::clone(&ids)
            });
        ids
    }

    /// `source_for` over a correspondence slice sorted by target (a
    /// mapping's pairs, or a c-block acting as a mini-mapping).
    fn pairs_lookup(
        pairs: &[(SchemaNodeId, SchemaNodeId)],
    ) -> impl Fn(SchemaNodeId) -> Option<SchemaNodeId> + Copy + '_ {
        move |t| {
            pairs
                .binary_search_by_key(&t, |&(_, tt)| tt)
                .ok()
                .map(|i| pairs[i].0)
        }
    }

    /// One query node's rewrite: the target nodes carrying its label,
    /// mapped through `source_for` and projected by `project`; sorted,
    /// deduped, `None` when empty (the node — hence the mapping — is
    /// irrelevant). A wildcard node rewrites to the *empty* set without
    /// killing the mapping: it has no label to rewrite, and the matchers
    /// treat its empty set as "any document node".
    fn rewrite_one<T: Ord>(
        &self,
        qs: QuerySym,
        source_for: impl Fn(SchemaNodeId) -> Option<SchemaNodeId>,
        project: impl Fn(SchemaNodeId) -> T,
    ) -> Option<Vec<T>> {
        if qs.wild {
            return Some(Vec::new());
        }
        let mut out: Vec<T> = self
            .target_nodes(qs.sym)
            .iter()
            .filter_map(|&t| source_for(t).map(&project))
            .collect();
        if out.is_empty() {
            return None;
        }
        out.sort_unstable();
        out.dedup();
        Some(out)
    }

    /// [`Self::rewrite_one`] across all query nodes; `None` as soon as any
    /// (non-wildcard) node comes up empty.
    fn rewrite_all<T: Ord>(
        &self,
        qsyms: &[QuerySym],
        source_for: impl Fn(SchemaNodeId) -> Option<SchemaNodeId> + Copy,
        project: impl Fn(SchemaNodeId) -> T + Copy,
    ) -> Option<Arc<Vec<Vec<T>>>> {
        qsyms
            .iter()
            .map(|&qs| self.rewrite_one(qs, source_for, project))
            .collect::<Option<Vec<_>>>()
            .map(Arc::new)
    }

    /// The shared memoization shape of [`Self::rewrite`] and
    /// [`Self::rewrite_nodes`]: probe `cache` under a shard read lock
    /// (hits are allocation-free), else compute outside any lock and
    /// insert. Two threads racing on the same cold `(query, mapping)` may
    /// both compute; the values are identical, so last-write-wins is fine.
    fn memoized<V: Clone>(
        &self,
        cache: &Sharded<HashMap<MappingId, Option<V>>>,
        qstr: &str,
        id: MappingId,
        compute: impl FnOnce() -> Option<V>,
    ) -> Option<V> {
        if let Some(Some(hit)) = cache.read(qstr, |per_mapping| per_mapping.get(&id).cloned()) {
            self.rewrite_hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.rewrite_misses.fetch_add(1, Ordering::Relaxed);
        let computed = compute();
        cache.update(qstr, Self::QUERIES_PER_SHARD, |per_mapping| {
            per_mapping.insert(id, computed.clone());
        });
        computed
    }

    /// Rewrites `q` through mapping `id`: per query node, the source-label
    /// symbols it may match; `None` when the mapping is irrelevant.
    /// Memoized on `(query, mapping)`; cache hits are allocation-free.
    fn rewrite(
        &self,
        qstr: &str,
        qsyms: &[QuerySym],
        m: MappingRef<'_>,
        id: MappingId,
    ) -> Option<SymbolSets> {
        self.memoized(&self.rewrite_cache, qstr, id, || {
            self.rewrite_all(
                qsyms,
                |t| m.source_for_target(t),
                |s| self.source_syms[s.idx()],
            )
        })
    }

    /// Rewrites through a raw correspondence set (a c-block acting as a
    /// mini-mapping); pairs are sorted by target.
    fn rewrite_pairs(
        &self,
        qsyms: &[QuerySym],
        pairs: &[(SchemaNodeId, SchemaNodeId)],
    ) -> Option<SymbolSets> {
        self.rewrite_all(qsyms, Self::pairs_lookup(pairs), |s| {
            self.source_syms[s.idx()]
        })
    }

    /// Node-granularity rewrite (the source *schema nodes* per query
    /// node), memoized on `(query, mapping)`.
    fn rewrite_nodes(
        &self,
        qstr: &str,
        qsyms: &[QuerySym],
        m: MappingRef<'_>,
        id: MappingId,
    ) -> Option<NodeSets> {
        self.memoized(&self.node_rewrite_cache, qstr, id, || {
            self.rewrite_all(qsyms, |t| m.source_for_target(t), |s| s)
        })
    }

    /// Node-granularity rewrite through raw pairs.
    fn rewrite_nodes_pairs(
        &self,
        qsyms: &[QuerySym],
        pairs: &[(SchemaNodeId, SchemaNodeId)],
    ) -> Option<NodeSets> {
        self.rewrite_all(qsyms, Self::pairs_lookup(pairs), |s| s)
    }

    /// Binds rewritten symbol sets to the document, skipping symbols whose
    /// label the document never uses.
    fn resolve(&self, q: &TwigPattern, sets: &[Vec<Symbol>]) -> Option<ResolvedPattern> {
        let ids = sets
            .iter()
            .map(|set| {
                set.iter()
                    .filter_map(|s| self.sym_doc_label[s.idx()])
                    .collect()
            })
            .collect();
        ResolvedPattern::with_label_ids(q, ids)
    }
}

// ---------------------------------------------------------------------
// label-granularity evaluation (Algorithms 3 and 4)

/// Algorithm 3 over a pre-filtered mapping subset.
pub(crate) fn eval_basic_over(
    q: &TwigPattern,
    pm: &PossibleMappings,
    doc: &Document,
    state: &SessionState,
    ids: &[MappingId],
) -> PtqResult {
    let qstr = q.to_string();
    let qsyms = state.query_syms(q);
    // Resolve rewrites up front (cache-served when warm) so the parallel
    // workers below never touch the cache locks.
    let rewrites: Vec<Option<SymbolSets>> = ids
        .iter()
        .map(|&id| state.rewrite(&qstr, &qsyms, pm.mapping(id), id))
        .collect();
    let answers = par_run(ids.len(), |k| {
        let sets = rewrites[k].as_ref()?;
        let matches = match state.resolve(q, sets) {
            Some(resolved) => match_twig(doc, &resolved),
            None => Vec::new(), // rewritten labels absent from the document
        };
        Some(PtqAnswer {
            mapping: ids[k],
            probability: pm.mapping(ids[k]).prob,
            matches,
        })
    })
    .into_iter()
    .flatten()
    .collect();
    PtqResult { answers }
}

/// Algorithm 4 over a pre-filtered mapping subset.
pub(crate) fn eval_tree_over(
    q: &TwigPattern,
    pm: &PossibleMappings,
    doc: &Document,
    tree: &BlockTree,
    state: &SessionState,
    ids: &[MappingId],
) -> PtqResult {
    let per = eval_tree_rec(q, pm, doc, tree, state, ids);
    let answers = ids
        .iter()
        .zip(per)
        .map(|(&id, matches)| PtqAnswer {
            mapping: id,
            probability: pm.mapping(id).prob,
            matches,
        })
        .collect();
    PtqResult { answers }
}

/// The paper's `twig_query_tree` recursion: per mapping in `ids`, the
/// match set of `q`.
fn eval_tree_rec(
    q: &TwigPattern,
    pm: &PossibleMappings,
    doc: &Document,
    tree: &BlockTree,
    state: &SessionState,
    ids: &[MappingId],
) -> Vec<Vec<TwigMatch>> {
    let qsyms = state.query_syms(q);
    if let Some(t) = anchor_for(q, &qsyms, pm, state, tree) {
        return query_subtree(q, &qsyms, t, pm, doc, tree, state, ids);
    }
    if q.len() == 1 || !any_subquery_anchors(q, pm, state, tree) {
        // No decomposition can reach a c-block: splitting would only pay
        // join overhead. Evaluate directly (the paper's `twig_query`).
        return direct(q, pm, doc, state, ids);
    }

    // Split: root-only query + one subquery per child (`split_query`).
    let q0 = q.node_only(q.root());
    let r0 = direct(&q0, pm, doc, state, ids);

    let children = q.node(q.root()).children.clone();
    let mut child_results: Vec<Vec<Vec<TwigMatch>>> = Vec::with_capacity(children.len());
    let mut child_maps = Vec::with_capacity(children.len());
    let mut child_axes = Vec::with_capacity(children.len());
    for &c in &children {
        let (mut sub, map) = q.subpattern_with_map(c);
        child_axes.push(q.node(c).axis);
        // The parent edge is re-imposed by the join below; standalone the
        // subquery may root anywhere.
        sub.set_axis(sub.root(), Axis::Descendant);
        child_results.push(eval_tree_rec(&sub, pm, doc, tree, state, ids));
        child_maps.push(map);
    }

    // Per mapping: stack-join the root candidates with each child's
    // sub-matches, then stitch combined matches.
    par_run(ids.len(), |k| {
        let child_matches: Vec<&[TwigMatch]> =
            child_results.iter().map(|cr| cr[k].as_slice()).collect();
        join_at_root(q, doc, &r0[k], &child_matches, &child_maps, &child_axes)
    })
}

/// Finds a block-tree anchor usable for the whole (sub)query: the query
/// root's label must denote a unique target element `t`, `t` must carry
/// c-blocks, and every query label must occur only inside `t`'s subtree
/// (otherwise a full mapping could rewrite a query label through an
/// occurrence outside the block's coverage).
pub(crate) fn anchor_for(
    q: &TwigPattern,
    qsyms: &[QuerySym],
    pm: &PossibleMappings,
    state: &SessionState,
    tree: &BlockTree,
) -> Option<SchemaNodeId> {
    let [t] = state.target_nodes(qsyms[q.root().idx()].sym) else {
        return None;
    };
    let t = *t;
    if !tree.has_blocks(t) {
        return None;
    }
    let mut subtree = pm.target.subtree(t);
    subtree.sort_unstable();
    // Wildcards never rewrite, so they cannot reach outside the block's
    // coverage; their `sym` is `None` and contributes no target nodes.
    let mut distinct: Vec<QuerySym> = qsyms.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    for qs in distinct {
        for &n in state.target_nodes(qs.sym) {
            if subtree.binary_search(&n).is_err() {
                return None;
            }
        }
    }
    Some(t)
}

/// True iff some proper subquery of `q` would find a usable anchor — the
/// condition under which splitting can pay off.
fn any_subquery_anchors(
    q: &TwigPattern,
    pm: &PossibleMappings,
    state: &SessionState,
    tree: &BlockTree,
) -> bool {
    q.ids().skip(1).any(|n| {
        let (sub, _) = q.subpattern_with_map(n);
        let sub_syms = state.query_syms(&sub);
        anchor_for(&sub, &sub_syms, pm, state, tree).is_some()
    })
}

/// The paper's `query_subtree`: answer once per c-block, replicate to the
/// block's mappings, evaluate the rest directly.
#[allow(clippy::too_many_arguments)]
fn query_subtree(
    q: &TwigPattern,
    qsyms: &[QuerySym],
    t: SchemaNodeId,
    pm: &PossibleMappings,
    doc: &Document,
    tree: &BlockTree,
    state: &SessionState,
    ids: &[MappingId],
) -> Vec<Vec<TwigMatch>> {
    let pos: HashMap<MappingId, usize> = ids.iter().enumerate().map(|(k, &id)| (id, k)).collect();
    let mut out: Vec<Option<Vec<TwigMatch>>> = vec![None; ids.len()];

    // Evaluate q once per block (independently), then replicate in block
    // order (later blocks overwrite, matching the legacy evaluator).
    let block_ids = tree.blocks_at(t);
    let block_matches = par_run(block_ids.len(), |bi| {
        let b = tree.block(block_ids[bi]);
        match state.rewrite_pairs(qsyms, &b.corrs) {
            Some(sets) => match state.resolve(q, &sets) {
                Some(resolved) => match_twig(doc, &resolved),
                None => Vec::new(),
            },
            None => Vec::new(),
        }
    });
    for (&bid, y) in block_ids.iter().zip(block_matches) {
        for mid in &tree.block(bid).mappings {
            if let Some(&k) = pos.get(mid) {
                out[k] = Some(y.clone());
            }
        }
    }

    // Mappings not covered by any block: evaluate directly (with rewrite
    // sharing among them).
    let uncovered: Vec<MappingId> = out
        .iter()
        .enumerate()
        .filter(|(_, slot)| slot.is_none())
        .map(|(k, _)| ids[k])
        .collect();
    let mut rest = direct(q, pm, doc, state, &uncovered).into_iter();
    out.into_iter()
        .map(|slot| match slot {
            Some(m) => m,
            None => rest.next().expect("one result per uncovered mapping"),
        })
        .collect()
}

/// Direct evaluation inside the block-tree algorithm, sharing work across
/// mappings whose *rewrites agree* — the generalization of c-block
/// replication to query fragments without an anchor.
fn direct(
    q: &TwigPattern,
    pm: &PossibleMappings,
    doc: &Document,
    state: &SessionState,
    ids: &[MappingId],
) -> Vec<Vec<TwigMatch>> {
    let qstr = q.to_string();
    let qsyms = state.query_syms(q);
    let mut groups: HashMap<SymbolSets, Vec<usize>> = HashMap::new();
    for (k, &id) in ids.iter().enumerate() {
        if let Some(sets) = state.rewrite(&qstr, &qsyms, pm.mapping(id), id) {
            groups.entry(sets).or_default().push(k);
        }
    }
    let groups: Vec<(SymbolSets, Vec<usize>)> = groups.into_iter().collect();
    let per_group = par_run(groups.len(), |gi| match state.resolve(q, &groups[gi].0) {
        Some(resolved) => match_twig(doc, &resolved),
        None => Vec::new(),
    });
    let mut out: Vec<Vec<TwigMatch>> = vec![Vec::new(); ids.len()];
    for ((_, members), matches) in groups.into_iter().zip(per_group) {
        let (last, rest) = members.split_last().expect("non-empty group");
        for &k in rest {
            out[k] = matches.clone();
        }
        out[*last] = matches;
    }
    out
}

/// Combines root-only matches with per-child sub-matches using the
/// structural join on root document nodes, then stitches full matches.
fn join_at_root(
    q: &TwigPattern,
    doc: &Document,
    r0: &[TwigMatch],
    child_matches: &[&[TwigMatch]],
    child_maps: &[Vec<PatternNodeId>],
    child_axes: &[Axis],
) -> Vec<TwigMatch> {
    if r0.is_empty() || child_matches.iter().any(|c| c.is_empty()) {
        return Vec::new();
    }
    // Root candidates (single-node matches, already sorted and unique).
    let roots: Vec<DocNodeId> = r0.iter().map(|m| m.nodes[0]).collect();

    // For each child: sorted (root, child-match indices) association built
    // from the structural join — no hashing on the per-mapping hot path.
    let mut per_child: Vec<Vec<(DocNodeId, Vec<usize>)>> = Vec::with_capacity(child_matches.len());
    for (j, cms) in child_matches.iter().enumerate() {
        // Child matches are sorted, so their roots arrive non-decreasing.
        let mut child_roots: Vec<DocNodeId> = Vec::new();
        let mut back_refs: Vec<Vec<usize>> = Vec::new();
        for (i, m) in cms.iter().enumerate() {
            if child_roots.last() == Some(&m.nodes[0]) {
                back_refs.last_mut().expect("parallel").push(i);
            } else {
                child_roots.push(m.nodes[0]);
                back_refs.push(vec![i]);
            }
        }
        let pairs = structural_join(doc, &roots, &child_roots, child_axes[j]);
        // Group by ancestor.
        let mut assoc: Vec<(DocNodeId, Vec<usize>)> = Vec::new();
        let mut sorted_pairs = pairs;
        sorted_pairs.sort_unstable_by_key(|&(a, d)| (a, d));
        for (a, d) in sorted_pairs {
            let refs = &back_refs[child_roots.binary_search(&d).expect("joined root")];
            if assoc.last().map(|(x, _)| *x) == Some(a) {
                assoc.last_mut().expect("grouped").1.extend_from_slice(refs);
            } else {
                assoc.push((a, refs.clone()));
            }
        }
        per_child.push(assoc);
    }

    // Per root: cross product of joinable child matches.
    let mut out = Vec::new();
    let empty: Vec<usize> = Vec::new();
    for &root in &roots {
        let lists: Vec<&Vec<usize>> = per_child
            .iter()
            .map(|assoc| {
                assoc
                    .binary_search_by_key(&root, |&(a, _)| a)
                    .map(|i| &assoc[i].1)
                    .unwrap_or(&empty)
            })
            .collect();
        if lists.iter().any(|l| l.is_empty()) {
            continue;
        }
        let mut idx = vec![0usize; lists.len()];
        loop {
            let mut nodes = vec![DocNodeId(0); q.len()];
            nodes[0] = root;
            for (j, list) in lists.iter().enumerate() {
                let cm = &child_matches[j][list[idx[j]]];
                for (i, &orig) in child_maps[j].iter().enumerate() {
                    nodes[orig.idx()] = cm.nodes[i];
                }
            }
            out.push(TwigMatch { nodes });
            // Advance odometer.
            let mut j = 0;
            loop {
                if j == idx.len() {
                    break;
                }
                idx[j] += 1;
                if idx[j] < lists[j].len() {
                    break;
                }
                idx[j] = 0;
                j += 1;
            }
            if j == idx.len() {
                break;
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

// ---------------------------------------------------------------------
// node-granularity evaluation (path_ptq semantics)

pub(crate) fn node_sets_to_matches(
    q: &TwigPattern,
    sets: &[Vec<SchemaNodeId>],
    pm: &PossibleMappings,
    doc: &Document,
    index: &PathIndex,
) -> Vec<TwigMatch> {
    let mut candidates = crate::path_ptq::schema_nodes_to_doc(sets, &pm.source, index);
    // A wildcard node has no schema nodes to pin: every document node is
    // a candidate (its rewrite set is empty by construction).
    for (list, id) in candidates.iter_mut().zip(q.ids()) {
        if q.node(id).is_wildcard() {
            *list = doc.ids().collect();
        }
    }
    match ResolvedPattern::with_node_candidates(q, candidates) {
        Some(resolved) => match_twig(doc, &resolved),
        None => Vec::new(),
    }
}

/// Node-granularity `query_basic`.
pub(crate) fn eval_basic_nodes(
    q: &TwigPattern,
    pm: &PossibleMappings,
    doc: &Document,
    index: &PathIndex,
    state: &SessionState,
) -> PtqResult {
    let qstr = q.to_string();
    let qsyms = state.query_syms(q);
    let ids = state.relevant(q, &qstr);
    // Resolve rewrites up front so the parallel workers below never touch
    // the cache locks.
    let rewrites: Vec<NodeSets> = ids
        .iter()
        .map(|&id| {
            state
                .rewrite_nodes(&qstr, &qsyms, pm.mapping(id), id)
                .expect("filtered")
        })
        .collect();
    let answers = par_run(ids.len(), |k| PtqAnswer {
        mapping: ids[k],
        probability: pm.mapping(ids[k]).prob,
        matches: node_sets_to_matches(q, &rewrites[k], pm, doc, index),
    });
    PtqResult { answers }
}

/// Node-granularity PTQ with the block tree: blocks anchored at target
/// nodes answer once per block; everything else shares work across
/// mappings whose node-rewrites agree.
pub(crate) fn eval_tree_nodes(
    q: &TwigPattern,
    pm: &PossibleMappings,
    doc: &Document,
    index: &PathIndex,
    tree: &BlockTree,
    state: &SessionState,
) -> PtqResult {
    let qstr = q.to_string();
    let qsyms = state.query_syms(q);
    let ids = state.relevant(q, &qstr);

    let mut out: Vec<Option<Vec<TwigMatch>>> = vec![None; ids.len()];
    if let Some(t) = anchor_for(q, &qsyms, pm, state, tree) {
        let pos: HashMap<MappingId, usize> =
            ids.iter().enumerate().map(|(k, &id)| (id, k)).collect();
        let block_ids = tree.blocks_at(t);
        let block_matches = par_run(block_ids.len(), |bi| {
            let b = tree.block(block_ids[bi]);
            match state.rewrite_nodes_pairs(&qsyms, &b.corrs) {
                Some(sets) => node_sets_to_matches(q, &sets, pm, doc, index),
                None => Vec::new(),
            }
        });
        for (&bid, matches) in block_ids.iter().zip(block_matches) {
            for mid in &tree.block(bid).mappings {
                if let Some(&k) = pos.get(mid) {
                    out[k] = Some(matches.clone());
                }
            }
        }
    }

    // Everything uncovered: group by identical node rewrites.
    let mut groups: HashMap<NodeSets, Vec<usize>> = HashMap::new();
    for (k, &id) in ids.iter().enumerate() {
        if out[k].is_none() {
            let sets = state
                .rewrite_nodes(&qstr, &qsyms, pm.mapping(id), id)
                .expect("filtered");
            groups.entry(sets).or_default().push(k);
        }
    }
    let groups: Vec<(NodeSets, Vec<usize>)> = groups.into_iter().collect();
    let per_group = par_run(groups.len(), |gi| {
        node_sets_to_matches(q, &groups[gi].0, pm, doc, index)
    });
    for ((_, members), matches) in groups.into_iter().zip(per_group) {
        for &k in &members {
            out[k] = Some(matches.clone());
        }
    }

    let answers = ids
        .iter()
        .zip(out)
        .map(|(&id, matches)| PtqAnswer {
            mapping: id,
            probability: pm.mapping(id).prob,
            matches: matches.expect("all slots filled"),
        })
        .collect();
    PtqResult { answers }
}

// ---------------------------------------------------------------------
// keyword evaluation

/// Keyword query over every possible mapping (SLCA semantics); mappings
/// whose rewrites agree share one evaluation.
pub(crate) fn eval_keyword(
    keywords: &[&str],
    pm: &PossibleMappings,
    doc: &Document,
    state: &SessionState,
) -> Result<Vec<KeywordAnswer>, KeywordError> {
    KeywordError::check(keywords)?;

    // Split vocabulary terms from value terms once: a term is vocabulary
    // iff the target schema uses it as a label.
    let term_syms: Vec<Option<Symbol>> =
        keywords.iter().map(|k| state.symbols.resolve(k)).collect();
    let is_vocab: Vec<bool> = term_syms
        .iter()
        .map(|&sym| !state.target_nodes(sym).is_empty())
        .collect();

    // Group mappings by the rewritten symbol sets of the vocabulary terms.
    let mut groups: HashMap<Vec<Vec<Symbol>>, Vec<MappingId>> = HashMap::new();
    'mapping: for (id, m) in pm.iter() {
        let mut key = Vec::new();
        for (&sym, &vocab) in term_syms.iter().zip(&is_vocab) {
            if vocab {
                let rewrite = state.rewrite_one(
                    QuerySym::label(sym),
                    |t| m.source_for_target(t),
                    |s| state.source_syms[s.idx()],
                );
                match rewrite {
                    Some(labels) => key.push(labels),
                    None => continue 'mapping, // irrelevant
                }
            }
        }
        groups.entry(key).or_default().push(id);
    }

    let groups: Vec<(Vec<Vec<Symbol>>, Vec<MappingId>)> = groups.into_iter().collect();
    let slca_sets = par_run(groups.len(), |gi| {
        slca(keywords, &is_vocab, &groups[gi].0, doc, state)
    });
    let mut answers = Vec::new();
    for ((_, ids), slcas) in groups.into_iter().zip(slca_sets) {
        for id in ids {
            answers.push(KeywordAnswer {
                mapping: id,
                probability: pm.mapping(id).prob,
                slcas: slcas.clone(),
            });
        }
    }
    answers.sort_by_key(|a| a.mapping);
    Ok(answers)
}

/// Computes the SLCA set for one rewrite. `rewrites` holds, in order, the
/// source-symbol sets of the vocabulary keywords.
fn slca(
    keywords: &[&str],
    is_vocab: &[bool],
    rewrites: &[Vec<Symbol>],
    doc: &Document,
    state: &SessionState,
) -> Vec<DocNodeId> {
    let k = keywords.len();
    // Per node: bitmask of keywords matched *at* the node.
    let mut own = vec![0u64; doc.len()];
    let mut rewrite_iter = rewrites.iter();
    for (bit, (term, &vocab)) in keywords.iter().zip(is_vocab).enumerate() {
        let mask = 1u64 << bit;
        if vocab {
            let labels = rewrite_iter.next().expect("one rewrite per vocab term");
            for &sym in labels {
                if let Some(l) = state.sym_doc_label[sym.idx()] {
                    for &n in doc.nodes_with_label_id(l) {
                        own[n.idx()] |= mask;
                    }
                }
            }
        } else {
            // Value term: whole-word containment in text content.
            for n in doc.ids() {
                if doc.text(n).is_some_and(|t| contains_word(t, term)) {
                    own[n.idx()] |= mask;
                }
            }
        }
    }

    // Subtree masks bottom-up (children have larger ids).
    let full = if k == 64 { u64::MAX } else { (1u64 << k) - 1 };
    let mut subtree = own;
    for i in (0..doc.len()).rev() {
        if let Some(p) = doc.parent(DocNodeId(i as u32)) {
            let m = subtree[i];
            subtree[p.idx()] |= m;
        }
    }

    // SLCA: full mask, and no child with a full mask.
    doc.ids()
        .filter(|&n| {
            subtree[n.idx()] == full && !doc.children(n).iter().any(|c| subtree[c.idx()] == full)
        })
        .collect()
}

/// Case-insensitive whole-word containment.
pub(crate) fn contains_word(text: &str, word: &str) -> bool {
    text.split(|c: char| !c.is_alphanumeric())
        .any(|w| w.eq_ignore_ascii_case(word))
}

// ---------------------------------------------------------------------
// the engine

/// Per-component resident-size breakdown of one [`QueryEngine`] session,
/// in bytes — every field is the exact heap size of a columnar arena (see
/// [`QueryEngine::footprint`]). `uxm stats` prints this, and
/// [`QueryEngine::approx_bytes`] (the registry's LRU currency) is its
/// total.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineFootprint {
    /// The document arena: node columns, CSR child/label indexes, and the
    /// contiguous text/attribute buffers.
    pub document: usize,
    /// The columnar mapping store: score/probability columns and the flat
    /// correspondence CSR.
    pub mappings: usize,
    /// The block tree: block arrays, CSR per-node block lists, path hash.
    pub block_tree: usize,
    /// Both schemas (node tables and label strings).
    pub schemas: usize,
    /// Session state: relevance bitsets, the symbol table, and the
    /// per-symbol inverted indexes.
    pub session: usize,
    /// The lazily built path index; 0 until a node-granularity query
    /// forces construction.
    pub path_index: usize,
}

impl EngineFootprint {
    /// Sum of all components.
    pub fn total(&self) -> usize {
        self.document
            + self.mappings
            + self.block_tree
            + self.schemas
            + self.session
            + self.path_index
    }
}

/// Exact label bytes plus a fixed per-node table cost for one schema.
fn schema_bytes(s: &Schema) -> usize {
    s.ids().map(|id| s.label(id).len()).sum::<usize>()
        + s.len() * std::mem::size_of::<uxm_xml::SchemaNode>()
        + s.name.len()
}

/// A query session over one `(mappings, document, block tree)` triple.
///
/// Build it once, then serve any number of typed [`Query`] requests
/// through [`QueryEngine::run`] — the one query entry point; label
/// interning, relevance bitsets, and the rewrite cache amortize across
/// calls. Evaluation strategy (naive vs block-tree) is chosen by the
/// [`crate::planner`] unless the query pins it, and never affects the
/// answers.
///
/// ```
/// use uxm_core::api::Query;
/// use uxm_core::engine::QueryEngine;
/// use uxm_core::block_tree::BlockTreeConfig;
/// use uxm_core::mapping::PossibleMappings;
/// use uxm_matching::Matcher;
/// use uxm_twig::TwigPattern;
/// use uxm_xml::{DocGenConfig, Document, Schema};
///
/// let source = Schema::parse_outline("Order(Buyer(Name) Item(Price))").unwrap();
/// let target = Schema::parse_outline("PO(Vendor(ContactName) Line(UnitPrice))").unwrap();
/// let matching = Matcher::default().match_schemas(&source, &target);
/// let pm = PossibleMappings::top_h(&matching, 8);
/// let doc = Document::generate(&source, &DocGenConfig::small(), 7);
///
/// let engine = QueryEngine::build(pm, doc, &BlockTreeConfig::default());
/// let q = TwigPattern::parse("PO//ContactName").unwrap();
/// let response = engine.run(&Query::ptq(q)).unwrap();
/// for answer in &response.answers {
///     assert!(answer.probability > 0.0);
/// }
/// ```
pub struct QueryEngine {
    pm: PossibleMappings,
    doc: Document,
    tree: BlockTree,
    state: SessionState,
    path_index: OnceLock<PathIndex>,
    /// Compiled programs keyed by canonical query shape (see
    /// [`crate::exec`]); programs embed session symbols, so the cache
    /// lives and dies with this engine.
    exec_cache: ProgramCache,
    /// Average mappings per c-block (the planner's fan-out statistic),
    /// fixed at build time.
    avg_block_fanout: f64,
}

// The registry shares one engine across many serving threads; the caches
// are sharded `RwLock` maps, so this holds by construction — enforce it
// at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryEngine>();
};

impl std::fmt::Debug for QueryEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryEngine")
            .field("source", &self.pm.source.name)
            .field("target", &self.pm.target.name)
            .field("mappings", &self.pm.len())
            .field("doc_nodes", &self.doc.len())
            .field("blocks", &self.tree.block_count())
            .finish()
    }
}

impl QueryEngine {
    /// Wraps an already-built block tree.
    pub fn new(pm: PossibleMappings, doc: Document, tree: BlockTree) -> QueryEngine {
        let state = SessionState::build(&pm, &doc);
        let blocks = tree.blocks();
        let avg_block_fanout = if blocks.is_empty() {
            0.0
        } else {
            blocks.iter().map(|b| b.mappings.len()).sum::<usize>() as f64 / blocks.len() as f64
        };
        QueryEngine {
            pm,
            doc,
            tree,
            state,
            path_index: OnceLock::new(),
            exec_cache: ProgramCache::new(),
            avg_block_fanout,
        }
    }

    /// Builds the block tree with `config`, then the session state.
    pub fn build(pm: PossibleMappings, doc: Document, config: &BlockTreeConfig) -> QueryEngine {
        let tree = BlockTree::build(&pm.target, &pm, config);
        QueryEngine::new(pm, doc, tree)
    }

    /// The possible-mapping set this session serves.
    pub fn mappings(&self) -> &PossibleMappings {
        &self.pm
    }

    /// The source document queries run against.
    pub fn document(&self) -> &Document {
        &self.doc
    }

    /// The session's block tree.
    pub fn tree(&self) -> &BlockTree {
        &self.tree
    }

    /// The source schema.
    pub fn source(&self) -> &Schema {
        &self.pm.source
    }

    /// The target schema (queries are posed in its vocabulary).
    pub fn target(&self) -> &Schema {
        &self.pm.target
    }

    /// The lazily built path index (node-granularity evaluation).
    pub fn path_index(&self) -> &PathIndex {
        self.path_index.get_or_init(|| PathIndex::new(&self.doc))
    }

    /// Cache hit/miss counters for this session.
    pub fn cache_stats(&self) -> CacheStats {
        self.state.stats()
    }

    /// Cumulative program-cache counters for the compiled backend
    /// (hits, misses, programs compiled) — surfaced per engine through
    /// `GET /stats`.
    pub fn exec_cache_stats(&self) -> ProgramCacheStats {
        self.exec_cache.stats()
    }

    /// Per-component resident-size breakdown of this session, computed
    /// from the **real columnar arena sizes** (exact array and buffer
    /// lengths), not encode-time estimates. The bounded per-query caches
    /// are excluded.
    pub fn footprint(&self) -> EngineFootprint {
        EngineFootprint {
            document: self.doc.arena_bytes(),
            mappings: self.pm.arena_bytes(),
            block_tree: self.tree.arena_bytes(),
            schemas: schema_bytes(self.source()) + schema_bytes(self.target()),
            session: self.state.arena_bytes(),
            path_index: self.path_index.get().map_or(0, PathIndex::arena_bytes),
        }
    }

    /// Resident size of the session's owned data, in bytes — the total of
    /// [`QueryEngine::footprint`].
    ///
    /// The [`crate::registry::EngineRegistry`] charges this against its
    /// memory budget when deciding evictions; since it reads the actual
    /// arena sizes, hydrated and freshly built engines account
    /// identically.
    pub fn approx_bytes(&self) -> usize {
        self.footprint().total()
    }

    /// The paper's `filter_mappings`: ids of mappings relevant to `q`, in
    /// id order — computed by bitset intersection and memoized.
    pub fn relevant_mappings(&self, q: &TwigPattern) -> Vec<MappingId> {
        self.state.relevant(q, &q.to_string()).to_vec()
    }

    /// The planner inputs for one query: the relevant-set size, the block
    /// statistics fixed at build time, and the query's measured
    /// posting-list floor.
    fn planner_stats(&self, q: &TwigPattern, relevant: usize, cache_warm: bool) -> PlannerStats {
        let postings = self.rewrite_postings(q);
        PlannerStats {
            relevant_mappings: relevant,
            block_count: self.tree.block_count(),
            avg_block_fanout: self.avg_block_fanout,
            min_rewrite_postings: postings.0,
            total_rewrite_postings: postings.1,
            value_predicates: q.ids().map(|id| q.node(id).preds.len()).sum(),
            wildcard_nodes: q.ids().filter(|&id| q.node(id).is_wildcard()).count(),
            pred_selectivity: planner::estimate_selectivity(q),
            cache_warm,
        }
    }

    /// The `(min, total)` rewritten-label posting-list lengths over `q`'s
    /// nodes, read off the session's per-symbol posting table (O(|q|)).
    /// A label occurring in neither schema nor the document contributes
    /// 0 — its candidate stream is empty. A wildcard's candidate stream
    /// is the whole document.
    fn rewrite_postings(&self, q: &TwigPattern) -> (usize, usize) {
        let mut min = usize::MAX;
        let mut total = 0usize;
        for &qs in &self.state.query_syms(q) {
            let p = if qs.wild {
                self.doc.len()
            } else {
                match qs.sym {
                    Some(s) => self.state.rewrite_postings[s.idx()],
                    None => 0,
                }
            };
            min = min.min(p);
            total += p;
        }
        (if min == usize::MAX { 0 } else { min }, total)
    }

    /// The k most-probable relevant mappings for `q` (ties by id), in
    /// evaluation order.
    fn topk_ids(&self, q: &TwigPattern, qstr: &str, k: usize) -> Vec<MappingId> {
        let mut ids = self.state.relevant(q, qstr).to_vec();
        ids.sort_by(|&a, &b| {
            self.pm
                .mapping(b)
                .prob
                .total_cmp(&self.pm.mapping(a).prob)
                .then(a.cmp(&b))
        });
        ids.truncate(k);
        ids
    }

    /// Label-granularity evaluation over a pre-filtered id set with a
    /// *recursive* evaluator (the compiled backend goes through
    /// [`Self::eval_compiled`], which derives its own id set from the
    /// program's bitset ops).
    fn eval_label(&self, q: &TwigPattern, ids: &[MappingId], evaluator: Evaluator) -> PtqResult {
        match evaluator {
            Evaluator::Naive | Evaluator::Compiled => {
                eval_basic_over(q, &self.pm, &self.doc, &self.state, ids)
            }
            Evaluator::BlockTree => {
                eval_tree_over(q, &self.pm, &self.doc, &self.tree, &self.state, ids)
            }
        }
    }

    /// Runs `q` through the compiled backend: fetch (or compile) the
    /// program for the canonical query shape, then replay it over the
    /// session arenas. Returns the raw result, the per-mapping aggregate
    /// rows when `agg` was requested (the program ends in an `agg-fold`
    /// op), and whether the program came from the cache.
    fn eval_compiled(
        &self,
        q: &TwigPattern,
        qstr: &str,
        mode: SetMode,
        k: Option<usize>,
        agg: Option<AggFunc>,
    ) -> (PtqResult, Option<Vec<AggRow>>, bool) {
        let key = ProgramCache::key(mode, k, agg, qstr);
        let (program, hit) = self
            .exec_cache
            .get_or_compile(&key, || exec::compile(q, mode, k, agg, &self.state));
        let ctx = exec::EngineCtx {
            pm: &self.pm,
            doc: &self.doc,
            state: &self.state,
            index: matches!(mode, SetMode::SchemaNodes).then(|| self.path_index()),
        };
        let (res, rows) = program.run(&ctx);
        (res, rows, hit)
    }

    /// The observability hook behind `uxm explain` and the `/query`
    /// `explain: true` option: the plan [`Self::run`] would execute
    /// right now, the planner statistics it would decide from, and the
    /// compiled program listing (always included for PTQ-shaped
    /// queries, whatever the plan picks). Like `run`, this warms the
    /// relevant-mapping cache — so explain-then-run reports a warm
    /// plan. The program is compiled fresh, off the cache, leaving the
    /// program-cache counters untouched.
    pub fn explain(&self, query: &Query) -> Result<Explain, UxmError> {
        query.validate()?;
        let hint = query.options().evaluator;
        Ok(match query {
            Query::Ptq { pattern, .. } => {
                self.explain_shaped(pattern, SetMode::Symbols, None, None, hint)
            }
            Query::PtqNodes { pattern, .. } => {
                self.explain_shaped(pattern, SetMode::SchemaNodes, None, None, hint)
            }
            Query::TopK { pattern, k, .. } => {
                self.explain_shaped(pattern, SetMode::Symbols, Some(*k), None, hint)
            }
            Query::Aggregate { pattern, func, .. } => {
                self.explain_shaped(pattern, SetMode::Symbols, None, Some(*func), hint)
            }
            Query::Keyword { .. } => Explain {
                plan: Plan::only(Evaluator::Naive),
                planner: None,
                program: None,
            },
        })
    }

    /// [`Self::explain`] for the PTQ-shaped query kinds.
    fn explain_shaped(
        &self,
        q: &TwigPattern,
        mode: SetMode,
        k: Option<usize>,
        agg: Option<AggFunc>,
        hint: crate::api::EvaluatorHint,
    ) -> Explain {
        let qstr = q.to_string();
        let warm = self.state.relevant_cached(&qstr);
        let relevant = self.state.relevant(q, &qstr).len();
        let relevant = k.map_or(relevant, |k| relevant.min(k));
        let stats = self.planner_stats(q, relevant, warm);
        let plan = exec::apply_env(hint, planner::choose(hint, &stats));
        Explain {
            plan,
            planner: Some(stats),
            program: Some(Arc::new(exec::compile(q, mode, k, agg, &self.state))),
        }
    }

    /// Runs one typed [`Query`] — the single query entry point.
    ///
    /// Parsed options are validated first; evaluation strategy is chosen
    /// by [`crate::planner::choose`] from `(|M_q|, block fan-out, cache
    /// warmth)` unless the query pins it. The returned
    /// [`QueryResponse`] carries the answers (with per-answer mapping
    /// provenance) and an [`ExecStats`] block reporting the plan, the
    /// cache traffic, and the elapsed time. Answers are independent of
    /// the chosen plan by construction — pinned by the planner
    /// differential suite in `tests/engine_equivalence.rs`.
    pub fn run(&self, query: &Query) -> Result<QueryResponse, UxmError> {
        query.validate()?;
        let start = std::time::Instant::now();
        let before = self.state.stats();
        let options = *query.options();
        let mut aggregate = None;
        // `program` is `Some(cache_hit)` when the compiled backend ran.
        let (answers, plan, relevant, backend, program) = match query {
            Query::Ptq { pattern, .. } => {
                let qstr = pattern.to_string();
                let warm = self.state.relevant_cached(&qstr);
                let ids = self.state.relevant(pattern, &qstr);
                let plan = exec::apply_env(
                    options.evaluator,
                    planner::choose(
                        options.evaluator,
                        &self.planner_stats(pattern, ids.len(), warm),
                    ),
                );
                let (res, program) = match plan.evaluator {
                    Evaluator::Compiled => {
                        let (res, _, hit) =
                            self.eval_compiled(pattern, &qstr, SetMode::Symbols, None, None);
                        (res, Some(hit))
                    }
                    ev => (self.eval_label(pattern, &ids, ev), None),
                };
                (
                    crate::api::shape_ptq_answers(res.answers, &options),
                    plan,
                    ids.len(),
                    plan.evaluator,
                    program,
                )
            }
            Query::PtqNodes { pattern, .. } => {
                let qstr = pattern.to_string();
                let warm = self.state.relevant_cached(&qstr);
                let relevant = self.state.relevant(pattern, &qstr).len();
                let plan = exec::apply_env(
                    options.evaluator,
                    planner::choose(
                        options.evaluator,
                        &self.planner_stats(pattern, relevant, warm),
                    ),
                );
                let (res, program) = match plan.evaluator {
                    Evaluator::Naive => (
                        eval_basic_nodes(
                            pattern,
                            &self.pm,
                            &self.doc,
                            self.path_index(),
                            &self.state,
                        ),
                        None,
                    ),
                    Evaluator::BlockTree => (
                        eval_tree_nodes(
                            pattern,
                            &self.pm,
                            &self.doc,
                            self.path_index(),
                            &self.tree,
                            &self.state,
                        ),
                        None,
                    ),
                    Evaluator::Compiled => {
                        let (res, _, hit) =
                            self.eval_compiled(pattern, &qstr, SetMode::SchemaNodes, None, None);
                        (res, Some(hit))
                    }
                };
                (
                    crate::api::shape_ptq_answers(res.answers, &options),
                    plan,
                    relevant,
                    plan.evaluator,
                    program,
                )
            }
            Query::TopK { pattern, k, .. } => {
                let qstr = pattern.to_string();
                let warm = self.state.relevant_cached(&qstr);
                let ids = self.topk_ids(pattern, &qstr, *k);
                let plan = exec::apply_env(
                    options.evaluator,
                    planner::choose(
                        options.evaluator,
                        &self.planner_stats(pattern, ids.len(), warm),
                    ),
                );
                let (mut res, program) = match plan.evaluator {
                    Evaluator::Compiled => {
                        let (res, _, hit) =
                            self.eval_compiled(pattern, &qstr, SetMode::Symbols, Some(*k), None);
                        (res, Some(hit))
                    }
                    ev => (self.eval_label(pattern, &ids, ev), None),
                };
                res.answers.sort_by(|a, b| {
                    b.probability
                        .total_cmp(&a.probability)
                        .then(a.mapping.cmp(&b.mapping))
                });
                (
                    crate::api::shape_ptq_answers(res.answers, &options),
                    plan,
                    ids.len(),
                    plan.evaluator,
                    program,
                )
            }
            Query::Aggregate { pattern, func, .. } => {
                let qstr = pattern.to_string();
                let warm = self.state.relevant_cached(&qstr);
                let ids = self.state.relevant(pattern, &qstr);
                let plan = exec::apply_env(
                    options.evaluator,
                    planner::choose(
                        options.evaluator,
                        &self.planner_stats(pattern, ids.len(), warm),
                    ),
                );
                // Per-mapping rows are folded from the *unfiltered* match
                // sets (each row's value is independent of which other
                // rows survive), so the min-probability option can prune
                // rows after the fold without changing any surviving one.
                let (mut rows, program) = match plan.evaluator {
                    Evaluator::Compiled => {
                        let (_, rows, hit) =
                            self.eval_compiled(pattern, &qstr, SetMode::Symbols, None, Some(*func));
                        (rows.unwrap_or_default(), Some(hit))
                    }
                    ev => {
                        let res = self.eval_label(pattern, &ids, ev);
                        let shaped = crate::api::shape_ptq_answers(
                            res.answers,
                            &crate::api::QueryOptions::default(),
                        );
                        (aggregate::rows_of(*func, &shaped, pattern, &self.doc), None)
                    }
                };
                if options.min_probability > 0.0 {
                    rows.retain(|r| r.probability >= options.min_probability);
                }
                aggregate = Some(AggregateResult::new(*func, rows));
                (Vec::new(), plan, ids.len(), plan.evaluator, program)
            }
            Query::Keyword { terms, .. } => {
                let refs: Vec<&str> = terms.iter().map(String::as_str).collect();
                let raw = eval_keyword(&refs, &self.pm, &self.doc, &self.state)?;
                let relevant = raw.len();
                (
                    crate::api::shape_keyword_answers(raw, &options),
                    Plan::only(Evaluator::Naive),
                    relevant,
                    Evaluator::Naive,
                    None,
                )
            }
        };
        let after = self.state.stats();
        Ok(QueryResponse {
            answers,
            aggregate,
            stats: ExecStats {
                plan,
                backend,
                relevant,
                program_cache_hits: u64::from(program == Some(true)),
                program_cache_misses: u64::from(program == Some(false)),
                rewrite_hits: after.rewrite_hits - before.rewrite_hits,
                rewrite_misses: after.rewrite_misses - before.rewrite_misses,
                elapsed_us: start.elapsed().as_micros() as u64,
            },
        })
    }

    /// Algorithm 3 (`query_basic`) — identical to the legacy
    /// `ptq_basic` free function.
    ///
    /// Use instead: [`QueryEngine::run`](crate::engine::QueryEngine::run) with
    /// [`Query::ptq`](crate::api::Query::ptq) pinned to
    /// [`EvaluatorHint::Naive`](crate::api::EvaluatorHint::Naive).
    #[deprecated(note = "build an api::Query (evaluator hint Naive) and call QueryEngine::run")]
    pub fn ptq(&self, q: &TwigPattern) -> PtqResult {
        let ids = self.state.relevant(q, &q.to_string());
        eval_basic_over(q, &self.pm, &self.doc, &self.state, &ids)
    }

    /// Algorithm 4 — identical to the legacy `ptq_with_tree` free
    /// function.
    ///
    /// Use instead: [`QueryEngine::run`](crate::engine::QueryEngine::run) with
    /// [`Query::ptq`](crate::api::Query::ptq) pinned to
    /// [`EvaluatorHint::BlockTree`](crate::api::EvaluatorHint::BlockTree).
    #[deprecated(note = "build an api::Query (evaluator hint BlockTree) and call QueryEngine::run")]
    pub fn ptq_with_tree(&self, q: &TwigPattern) -> PtqResult {
        let ids = self.state.relevant(q, &q.to_string());
        eval_tree_over(q, &self.pm, &self.doc, &self.tree, &self.state, &ids)
    }

    /// Top-k PTQ — identical to the legacy `topk_ptq` free function.
    ///
    /// Use instead: [`QueryEngine::run`](crate::engine::QueryEngine::run) with
    /// [`Query::topk`](crate::api::Query::topk).
    #[deprecated(note = "build an api::Query::topk and call QueryEngine::run")]
    pub fn topk(&self, q: &TwigPattern, k: usize) -> PtqResult {
        let qstr = q.to_string();
        let ids = self.topk_ids(q, &qstr, k);
        let mut res = eval_tree_over(q, &self.pm, &self.doc, &self.tree, &self.state, &ids);
        res.answers.sort_by(|a, b| {
            b.probability
                .total_cmp(&a.probability)
                .then(a.mapping.cmp(&b.mapping))
        });
        res
    }

    /// Node-granularity `query_basic` — identical to the legacy
    /// `ptq_basic_nodes` free function.
    ///
    /// Use instead: [`QueryEngine::run`](crate::engine::QueryEngine::run) with
    /// [`Query::ptq_nodes`](crate::api::Query::ptq_nodes) pinned to
    /// [`EvaluatorHint::Naive`](crate::api::EvaluatorHint::Naive).
    #[deprecated(note = "build an api::Query::ptq_nodes (hint Naive) and call QueryEngine::run")]
    pub fn ptq_nodes(&self, q: &TwigPattern) -> PtqResult {
        eval_basic_nodes(q, &self.pm, &self.doc, self.path_index(), &self.state)
    }

    /// Node-granularity block-tree PTQ — identical to the legacy
    /// `ptq_with_tree_nodes` free function.
    ///
    /// Use instead: [`QueryEngine::run`](crate::engine::QueryEngine::run) with
    /// [`Query::ptq_nodes`](crate::api::Query::ptq_nodes) pinned to
    /// [`EvaluatorHint::BlockTree`](crate::api::EvaluatorHint::BlockTree).
    #[deprecated(
        note = "build an api::Query::ptq_nodes (hint BlockTree) and call QueryEngine::run"
    )]
    pub fn ptq_with_tree_nodes(&self, q: &TwigPattern) -> PtqResult {
        eval_tree_nodes(
            q,
            &self.pm,
            &self.doc,
            self.path_index(),
            &self.tree,
            &self.state,
        )
    }

    /// Keyword query (SLCA semantics) — identical to the legacy
    /// `keyword_query` free function.
    ///
    /// Use instead: [`QueryEngine::run`](crate::engine::QueryEngine::run) with
    /// [`Query::keyword`](crate::api::Query::keyword).
    #[deprecated(note = "build an api::Query::keyword and call QueryEngine::run")]
    pub fn keyword(&self, keywords: &[&str]) -> Result<Vec<KeywordAnswer>, KeywordError> {
        eval_keyword(keywords, &self.pm, &self.doc, &self.state)
    }
}

#[cfg(test)]
// The legacy methods stay under test until they are removed: this module
// is part of the shim coverage the deprecation gate exempts.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::api::{EvaluatorHint, Granularity};
    use uxm_matching::Matcher;
    use uxm_xml::DocGenConfig;

    fn engine() -> QueryEngine {
        let source = Schema::parse_outline(
            "Order(Buyer(Name Contact(EMail)) DeliverTo(Address(City Street)) \
             POLine*(LineNo Quantity UnitPrice))",
        )
        .unwrap();
        let target = Schema::parse_outline(
            "PO(Purchaser(PName PContact(PEMail)) ShipTo(Addr(Town Road)) \
             Line(No Qty UnitPrice))",
        )
        .unwrap();
        let matching = Matcher::context().match_schemas(&source, &target);
        let pm = PossibleMappings::top_h(&matching, 16);
        let doc = Document::generate(&source, &DocGenConfig::small(), 11);
        QueryEngine::build(pm, doc, &BlockTreeConfig::default())
    }

    #[test]
    fn engine_matches_legacy_free_functions() {
        let e = engine();
        for qs in [
            "PO/Line/Qty",
            "//Line//No",
            "//UnitPrice",
            "//Addr/Town",
            "PO",
        ] {
            let q = TwigPattern::parse(qs).unwrap();
            assert_eq!(
                e.ptq(&q),
                crate::ptq::ptq_basic(&q, e.mappings(), e.document()),
                "ptq {qs}"
            );
            assert_eq!(
                e.ptq_with_tree(&q),
                crate::ptq_tree::ptq_with_tree(&q, e.mappings(), e.document(), e.tree()),
                "ptq_with_tree {qs}"
            );
            assert_eq!(
                e.topk(&q, 5),
                crate::topk::topk_ptq(&q, e.mappings(), e.document(), e.tree(), 5),
                "topk {qs}"
            );
        }
    }

    #[test]
    fn relevant_mappings_match_filter_mappings() {
        let e = engine();
        for qs in ["PO/Line/Qty", "PO//PEMail", "//Nope", "PO"] {
            let q = TwigPattern::parse(qs).unwrap();
            assert_eq!(
                e.relevant_mappings(&q),
                crate::rewrite::filter_mappings(&q, e.mappings()),
                "query {qs}"
            );
        }
    }

    #[test]
    fn repeated_queries_hit_the_caches() {
        let e = engine();
        let q = TwigPattern::parse("//Line//No").unwrap();
        assert!(
            !e.relevant_mappings(&q).is_empty(),
            "fixture must produce relevant mappings"
        );
        // Basic evaluation rewrites per mapping — every repeat must come
        // from the (query, mapping) cache.
        let first = e.ptq(&q);
        let cold = e.cache_stats();
        let second = e.ptq(&q);
        let warm = e.cache_stats();
        assert_eq!(first, second);
        assert!(warm.rewrite_hits > cold.rewrite_hits, "rewrite cache used");
        assert!(
            warm.relevant_hits > cold.relevant_hits,
            "relevant cache used"
        );
        assert_eq!(
            warm.rewrite_misses, cold.rewrite_misses,
            "no recomputation on the second run"
        );
        // The tree path returns identical results before and after caching.
        assert_eq!(e.ptq_with_tree(&q), e.ptq_with_tree(&q));
    }

    #[test]
    fn unknown_label_yields_empty_everywhere() {
        let e = engine();
        let q = TwigPattern::parse("PO//DoesNotExist").unwrap();
        assert!(e.relevant_mappings(&q).is_empty());
        assert!(e.ptq(&q).is_empty());
        assert!(e.ptq_with_tree(&q).is_empty());
    }

    #[test]
    fn run_matches_legacy_methods_under_every_hint() {
        let e = engine();
        let hints = [
            EvaluatorHint::Auto,
            EvaluatorHint::Naive,
            EvaluatorHint::BlockTree,
        ];
        for qs in ["PO/Line/Qty", "//Line//No", "//UnitPrice", "PO"] {
            let q = TwigPattern::parse(qs).unwrap();
            let legacy = e.ptq_with_tree(&q);
            for hint in hints {
                let resp = e.run(&Query::ptq(q.clone()).with_evaluator(hint)).unwrap();
                assert_eq!(resp.len(), legacy.len(), "{qs} {hint:?}");
                for (a, l) in resp.answers.iter().zip(legacy.iter()) {
                    assert_eq!(a.mappings, vec![l.mapping], "{qs} {hint:?}");
                    assert_eq!(a.matches, l.matches, "{qs} {hint:?}");
                    assert_eq!(a.probability, l.probability, "{qs} {hint:?}");
                }
            }
            // Top-k and node granularity agree with their legacy methods
            // too.
            let top = e.run(&Query::topk(q.clone(), 3)).unwrap();
            let top_legacy = e.topk(&q, 3);
            assert_eq!(top.len(), top_legacy.len(), "{qs} topk");
            for (a, l) in top.answers.iter().zip(top_legacy.iter()) {
                assert_eq!(
                    (a.mappings.as_slice(), &a.matches),
                    (&[l.mapping][..], &l.matches)
                );
            }
            let nodes = e.run(&Query::ptq_nodes(q.clone())).unwrap();
            let mut nodes_legacy = e.ptq_with_tree_nodes(&q);
            nodes_legacy.normalize();
            assert_eq!(nodes.len(), nodes_legacy.len(), "{qs} nodes");
        }
    }

    #[test]
    fn run_reports_plan_and_exec_stats() {
        let e = engine();
        let q = TwigPattern::parse("//Line//No").unwrap();
        let pinned = e
            .run(&Query::ptq(q.clone()).with_evaluator(EvaluatorHint::Naive))
            .unwrap();
        assert_eq!(pinned.stats.plan.evaluator, Evaluator::Naive);
        assert_eq!(pinned.stats.plan.reason, crate::planner::PlanReason::Pinned);
        assert_eq!(pinned.stats.relevant, e.relevant_mappings(&q).len());
        // A repeat of the same query is served from the caches.
        let warm = e.run(&Query::ptq(q.clone())).unwrap();
        assert!(
            warm.stats.rewrite_misses == 0,
            "second run recomputes nothing"
        );
        assert_eq!(warm.answers, pinned.answers);
    }

    #[test]
    fn run_distinct_granularity_aggregates_with_provenance() {
        let e = engine();
        let q = TwigPattern::parse("//Line//No").unwrap();
        let per_mapping = e.run(&Query::ptq(q.clone())).unwrap();
        let distinct = e
            .run(&Query::ptq(q.clone()).with_granularity(Granularity::Distinct))
            .unwrap();
        assert!(distinct.len() <= per_mapping.len());
        // Mass is conserved and provenance partitions the relevant set.
        assert!((distinct.total_probability() - per_mapping.total_probability()).abs() < 1e-9);
        let mut provenance: Vec<MappingId> = distinct
            .answers
            .iter()
            .flat_map(|a| a.mappings.iter().copied())
            .collect();
        provenance.sort_unstable();
        assert_eq!(provenance, e.relevant_mappings(&q));
        // The threshold drops low-mass answers.
        let thresholded = e.run(&Query::ptq(q).with_min_probability(1.0)).unwrap();
        assert!(thresholded.len() <= per_mapping.len());
        assert!(thresholded.answers.iter().all(|a| a.probability >= 1.0));
    }

    #[test]
    fn run_keyword_matches_legacy_and_validates() {
        let e = engine();
        let resp = e.run(&Query::keyword(vec!["UnitPrice".into()])).unwrap();
        let legacy = e.keyword(&["UnitPrice"]).unwrap();
        assert_eq!(resp.len(), legacy.len());
        for (a, l) in resp.answers.iter().zip(&legacy) {
            assert_eq!(a.mappings, vec![l.mapping]);
            let slcas: Vec<_> = a.matches.iter().map(|m| m.nodes[0]).collect();
            assert_eq!(slcas, l.slcas);
        }
        assert!(matches!(
            e.run(&Query::keyword(vec![])),
            Err(UxmError::Keyword(KeywordError::Empty))
        ));
        let q = TwigPattern::parse("PO").unwrap();
        assert!(matches!(
            e.run(&Query::ptq(q).with_min_probability(2.0)),
            Err(UxmError::InvalidQuery(_))
        ));
    }

    #[test]
    fn bitset_ids_roundtrip() {
        let mut b = MappingBits::empty(130);
        for i in [0usize, 63, 64, 65, 129] {
            b.set(i);
        }
        let ids: Vec<u32> = b.ids().iter().map(|m| m.0).collect();
        assert_eq!(ids, vec![0, 63, 64, 65, 129]);
        let full = MappingBits::full(70);
        assert_eq!(full.ids().len(), 70);
    }
}
