//! Blocks and c-blocks (paper Definitions 1–2).

use crate::mapping::{MappingId, PossibleMappings};
use uxm_xml::{Schema, SchemaNodeId};

/// Index of a block within a [`crate::block_tree::BlockTree`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct BlockId(pub u32);

impl BlockId {
    /// Widens to a `usize` for indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// A c-block: a set of correspondences shared by a set of mappings, whose
/// target elements form the *complete subtree* rooted at the anchor.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// The target schema element anchoring this block (`b.a`).
    pub anchor: SchemaNodeId,
    /// Correspondences `(source, target)`, sorted by target (`b.C`).
    pub corrs: Vec<(SchemaNodeId, SchemaNodeId)>,
    /// Ids of the mappings sharing all of `corrs` (`b.M`), sorted.
    pub mappings: Vec<MappingId>,
}

impl Block {
    /// Number of correspondences (`|b.C|`, the block's "size" in Fig 9(c)).
    pub fn len(&self) -> usize {
        self.corrs.len()
    }

    /// True iff the block carries no correspondences (never constructed).
    pub fn is_empty(&self) -> bool {
        self.corrs.is_empty()
    }

    /// Number of sharing mappings (`|b.M|`).
    pub fn support(&self) -> usize {
        self.mappings.len()
    }

    /// The source element this block assigns to target `t`, if covered.
    pub fn source_for_target(&self, t: SchemaNodeId) -> Option<SchemaNodeId> {
        self.corrs
            .binary_search_by_key(&t, |&(_, tt)| tt)
            .ok()
            .map(|i| self.corrs[i].0)
    }

    /// Validates the c-block conditions of Definition 2 against a target
    /// schema and mapping set; returns a violation description on failure.
    pub fn validate(
        &self,
        target: &Schema,
        mappings: &PossibleMappings,
        min_support: usize,
    ) -> Result<(), String> {
        // (support) |b.M| >= tau * |M|
        if self.support() < min_support {
            return Err(format!(
                "support {} below minimum {min_support}",
                self.support()
            ));
        }
        // (coverage) correspondence targets == complete subtree of anchor
        let mut subtree = target.subtree(self.anchor);
        subtree.sort_unstable();
        let mut covered: Vec<SchemaNodeId> = self.corrs.iter().map(|&(_, t)| t).collect();
        covered.sort_unstable();
        if subtree != covered {
            return Err(format!(
                "covered targets {covered:?} != subtree of {:?} {subtree:?}",
                self.anchor
            ));
        }
        // (sharing) every listed mapping contains every correspondence
        for &mid in &self.mappings {
            let m = mappings.mapping(mid);
            for &(s, t) in &self.corrs {
                if !m.contains_pair(s, t) {
                    return Err(format!("mapping {mid:?} lacks pair ({s:?},{t:?})"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Schema, PossibleMappings) {
        let source = Schema::parse_outline("O(BP(BCN) SP(SCN))").unwrap();
        let target = Schema::parse_outline("ORDER(IP(ICN))").unwrap();
        let s = |l: &str| source.nodes_with_label(l)[0];
        let t = |l: &str| target.nodes_with_label(l)[0];
        let pm = PossibleMappings::from_pairs(
            source.clone(),
            target.clone(),
            vec![
                (
                    vec![
                        (s("O"), t("ORDER")),
                        (s("BP"), t("IP")),
                        (s("BCN"), t("ICN")),
                    ],
                    3.0,
                ),
                (
                    vec![
                        (s("O"), t("ORDER")),
                        (s("BP"), t("IP")),
                        (s("BCN"), t("ICN")),
                    ],
                    2.0,
                ),
                (
                    vec![
                        (s("O"), t("ORDER")),
                        (s("SP"), t("IP")),
                        (s("SCN"), t("ICN")),
                    ],
                    1.0,
                ),
            ],
        );
        (target, pm)
    }

    #[test]
    fn valid_c_block_passes() {
        let (target, pm) = setup();
        let t = |l: &str| target.nodes_with_label(l)[0];
        let source = &pm.source;
        let s = |l: &str| source.nodes_with_label(l)[0];
        let b = Block {
            anchor: t("IP"),
            corrs: vec![(s("BP"), t("IP")), (s("BCN"), t("ICN"))],
            mappings: vec![MappingId(0), MappingId(1)],
        };
        assert!(b.validate(&target, &pm, 2).is_ok());
        assert_eq!(b.len(), 2);
        assert_eq!(b.support(), 2);
        assert_eq!(b.source_for_target(t("ICN")), Some(s("BCN")));
        assert_eq!(b.source_for_target(t("ORDER")), None);
    }

    #[test]
    fn incomplete_subtree_fails() {
        let (target, pm) = setup();
        let t = |l: &str| target.nodes_with_label(l)[0];
        let source = &pm.source;
        let s = |l: &str| source.nodes_with_label(l)[0];
        let b = Block {
            anchor: t("IP"),
            corrs: vec![(s("BP"), t("IP"))], // missing ICN
            mappings: vec![MappingId(0), MappingId(1)],
        };
        assert!(b.validate(&target, &pm, 2).is_err());
    }

    #[test]
    fn insufficient_support_fails() {
        let (target, pm) = setup();
        let t = |l: &str| target.nodes_with_label(l)[0];
        let source = &pm.source;
        let s = |l: &str| source.nodes_with_label(l)[0];
        let b = Block {
            anchor: t("ICN"),
            corrs: vec![(s("SCN"), t("ICN"))],
            mappings: vec![MappingId(2)],
        };
        assert!(b.validate(&target, &pm, 2).is_err());
        assert!(b.validate(&target, &pm, 1).is_ok());
    }

    #[test]
    fn non_sharing_mapping_fails() {
        let (target, pm) = setup();
        let t = |l: &str| target.nodes_with_label(l)[0];
        let source = &pm.source;
        let s = |l: &str| source.nodes_with_label(l)[0];
        let b = Block {
            anchor: t("ICN"),
            corrs: vec![(s("BCN"), t("ICN"))],
            mappings: vec![MappingId(0), MappingId(2)], // m2 maps SCN~ICN
        };
        assert!(b.validate(&target, &pm, 1).is_err());
    }
}
