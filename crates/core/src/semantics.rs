//! Alternative answer semantics over PTQ results.
//!
//! The paper's PTQ follows the *by-table* model of Dong, Halevy, Yu
//! (VLDB'07): one mapping governs the whole document, so an answer is a
//! `(match set, probability)` pair per mapping. Two other views are useful
//! and cheap to derive:
//!
//! * **per-match (by-tuple flavoured)** — the probability that a given
//!   *individual match* is correct, i.e. the total mass of mappings that
//!   produce it ([`match_probabilities`]);
//! * **aggregates under uncertainty** (Gal, Martinez, Simari,
//!   Subrahmanian, ICDE'09) — the distribution of `COUNT(matches)` over
//!   mappings, plus its expectation ([`count_distribution`],
//!   [`expected_count`]).

use crate::ptq::PtqResult;
use uxm_twig::TwigMatch;

/// Per-match probabilities: for every distinct match occurring under any
/// mapping, the summed probability of the mappings producing it. Sorted by
/// probability descending, ties by match.
pub fn match_probabilities(result: &PtqResult) -> Vec<(TwigMatch, f64)> {
    let mut agg: Vec<(TwigMatch, f64)> = Vec::new();
    for answer in result.iter() {
        for m in &answer.matches {
            match agg.iter_mut().find(|(x, _)| x == m) {
                Some((_, p)) => *p += answer.probability,
                None => agg.push((m.clone(), answer.probability)),
            }
        }
    }
    agg.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    agg
}

/// The distribution of the number of matches: `(count, probability)`
/// pairs, sorted by count. Probabilities of mappings with equal match
/// counts are summed.
pub fn count_distribution(result: &PtqResult) -> Vec<(usize, f64)> {
    let mut dist: Vec<(usize, f64)> = Vec::new();
    for answer in result.iter() {
        let c = answer.matches.len();
        match dist.iter_mut().find(|(x, _)| *x == c) {
            Some((_, p)) => *p += answer.probability,
            None => dist.push((c, answer.probability)),
        }
    }
    dist.sort_by_key(|&(c, _)| c);
    dist
}

/// The expected number of matches under the mapping distribution,
/// normalized over the relevant mappings' mass.
pub fn expected_count(result: &PtqResult) -> f64 {
    let mass = result.total_probability();
    if mass == 0.0 {
        return 0.0;
    }
    result
        .iter()
        .map(|a| a.matches.len() as f64 * a.probability)
        .sum::<f64>()
        / mass
}

#[cfg(test)]
#[allow(deprecated)] // fixtures built through the legacy wrappers
mod tests {
    use super::*;
    use crate::mapping::PossibleMappings;
    use crate::ptq::ptq_basic;
    use uxm_twig::TwigPattern;
    use uxm_xml::{parse_document, Schema};

    fn setup() -> PtqResult {
        let source = Schema::parse_outline("Order(BP(BCN RCN) SP(SCN))").unwrap();
        let target = Schema::parse_outline("ORDER(IP(ICN))").unwrap();
        let s = |l: &str| source.nodes_with_label(l)[0];
        let t = |l: &str| target.nodes_with_label(l)[0];
        let pm = PossibleMappings::from_pairs(
            source.clone(),
            target.clone(),
            vec![
                // two mappings agree on BP~IP but pick different contacts;
                // a third maps the seller party (no matches in the doc
                // below beyond SCN).
                (vec![(s("BP"), t("IP")), (s("BCN"), t("ICN"))], 0.4),
                (vec![(s("BP"), t("IP")), (s("RCN"), t("ICN"))], 0.4),
                (vec![(s("SP"), t("IP")), (s("SCN"), t("ICN"))], 0.2),
            ],
        );
        let doc = parse_document(
            "<Order><BP><BCN>Cathy</BCN><RCN>Bob</RCN></BP><SP><SCN>Dave</SCN></SP></Order>",
        )
        .unwrap();
        let q = TwigPattern::parse("//IP//ICN").unwrap();
        ptq_basic(&q, &pm, &doc)
    }

    #[test]
    fn match_probabilities_sum_mapping_mass() {
        let res = setup();
        let per_match = match_probabilities(&res);
        assert_eq!(per_match.len(), 3, "Cathy, Bob, Dave");
        // Each match produced by exactly one mapping here.
        let total: f64 = per_match.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!((per_match[0].1 - 0.4).abs() < 1e-9);
    }

    #[test]
    fn shared_match_accumulates() {
        // Two mappings producing the same match should sum.
        let source = Schema::parse_outline("O(A B)").unwrap();
        let target = Schema::parse_outline("R(X Y)").unwrap();
        let s = |l: &str| source.nodes_with_label(l)[0];
        let t = |l: &str| target.nodes_with_label(l)[0];
        let pm = PossibleMappings::from_pairs(
            source.clone(),
            target.clone(),
            vec![
                (
                    vec![(s("O"), t("R")), (s("A"), t("X")), (s("B"), t("Y"))],
                    0.7,
                ),
                (vec![(s("O"), t("R")), (s("A"), t("X"))], 0.3),
            ],
        );
        let doc = parse_document("<O><A>v</A><B>w</B></O>").unwrap();
        let q = TwigPattern::parse("R/X").unwrap();
        let res = ptq_basic(&q, &pm, &doc);
        let per_match = match_probabilities(&res);
        assert_eq!(per_match.len(), 1);
        assert!((per_match[0].1 - 1.0).abs() < 1e-9, "0.7 + 0.3");
    }

    #[test]
    fn count_distribution_sums_to_relevant_mass() {
        let res = setup();
        let dist = count_distribution(&res);
        let total: f64 = dist.iter().map(|(_, p)| p).sum();
        assert!((total - res.total_probability()).abs() < 1e-9);
        // every mapping yields exactly 1 match here
        assert_eq!(dist, vec![(1, 1.0)]);
    }

    #[test]
    fn expected_count_weighted_mean() {
        let res = setup();
        assert!((expected_count(&res) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_result_yields_zero() {
        let res = PtqResult::default();
        assert_eq!(expected_count(&res), 0.0);
        assert!(count_distribution(&res).is_empty());
        assert!(match_probabilities(&res).is_empty());
    }
}
