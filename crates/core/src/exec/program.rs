//! The compiled program representation: a flat instruction stream over
//! register slots, plus the constants the compiler inlined.

use crate::aggregate::AggFunc;
use std::fmt;
use std::ops::Range;
use uxm_twig::TwigPattern;
use uxm_xml::{SchemaNodeId, Symbol};

/// What a program's rewrite sets contain — the execution-time analogue
/// of the engine's two evaluation granularities.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SetMode {
    /// Label granularity: rewrite sets hold source-label symbols, bound
    /// to the document's label ids at match time (`Query::Ptq`,
    /// `Query::TopK`).
    Symbols,
    /// Node granularity: rewrite sets hold source schema nodes, bound to
    /// document nodes through the path index (`Query::PtqNodes`).
    SchemaNodes,
}

impl SetMode {
    /// The listing name.
    pub fn name(self) -> &'static str {
        match self {
            SetMode::Symbols => "symbols",
            SetMode::SchemaNodes => "schema-nodes",
        }
    }
}

/// The answer-emission order a [`Op::FoldProb`] op commits to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FoldMode {
    /// One answer per surviving mapping, ascending mapping id (the order
    /// of Algorithm 3 over the relevant set).
    PerMapping,
    /// Answers in the id register's top-k order: probability descending,
    /// ties by ascending id (the order of the engine's top-k pruning).
    TopOrder,
}

impl FoldMode {
    /// The listing name.
    pub fn name(self) -> &'static str {
        match self {
            FoldMode::PerMapping => "per-mapping",
            FoldMode::TopOrder => "top-order",
        }
    }
}

/// One instruction of a compiled [`Program`].
///
/// Ops read and write the VM's registers (the mapping bitset, the id
/// list, and the shape arena — see `docs/execution.md`); every operand
/// was resolved at compile time, so the interpreter loop never consults
/// the symbol table or the schemas.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// `bits ← all mappings` — start from the full mapping set.
    InitBits,
    /// `bits &= relevance[sym]` — AND one query label's precomputed
    /// relevance bitset column. The label is kept for listings only.
    AndRelevance {
        /// The interned label symbol whose bitset column is ANDed.
        sym: Symbol,
        /// The query label, for `explain` listings.
        label: String,
    },
    /// `bits ← ∅` — a query label unknown to schemas and document; every
    /// answer is provably empty.
    ClearBits {
        /// The unknown query label, for `explain` listings.
        label: String,
    },
    /// `ids ← bits` — materialize the surviving mapping ids, ascending.
    MaterializeIds,
    /// `ids ← top-k(ids)` — keep the `k` most probable ids (probability
    /// descending, ties by ascending id), read off the probability
    /// column.
    TopKHeap {
        /// How many mappings survive.
        k: usize,
    },
    /// For query node `node`: merge-intersect every live mapping's CSR
    /// correspondence row against the compiled target-candidate range
    /// (a slice of the program's target arena), project the hits
    /// (source symbols or source schema nodes per [`SetMode`]), and
    /// append the sorted, deduplicated set to the shape arena. A mapping
    /// whose set comes up empty is killed: it can never produce an
    /// answer (Algorithm 3 drops it at rewrite time).
    IntersectCsr {
        /// The query-node index this op rewrites.
        node: u32,
        /// The target-candidate slice of the program's target arena.
        targets: Range<u32>,
    },
    /// For wildcard query node `node`: push one **empty** shape-arena
    /// row per live mapping. A wildcard imposes no label constraint, so
    /// its rewrite set is empty-but-satisfiable — the matcher treats the
    /// empty set as "any document node" — and no mapping is killed.
    WildcardSet {
        /// The query-node index this op covers.
        node: u32,
    },
    /// Group live mappings whose shape-arena rows are identical: each
    /// distinct row is matched once and shared.
    GroupShapes,
    /// Run the twig matcher once per distinct shape group (label sets
    /// via the document's label column, node sets via the path index).
    MatchShapes {
        /// What the shape rows contain.
        mode: SetMode,
    },
    /// Zip each live mapping's probability (from the probability column)
    /// with its group's matches into one raw answer per mapping.
    FoldProb {
        /// The emission order this program commits to.
        mode: FoldMode,
    },
    /// Fold each answer's match set into one aggregate row (the shared
    /// `crate::aggregate::row_value` semantics over the pattern's
    /// spine leaf), in answer order.
    AggFold {
        /// The aggregate function folded per mapping.
        func: AggFunc,
    },
    /// Finish: package the folded answers as the program result.
    EmitAnswers,
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::InitBits => write!(f, "init-bits"),
            Op::AndRelevance { sym, label } => {
                write!(f, "and-relevance {label} (sym {})", sym.0)
            }
            Op::ClearBits { label } => write!(f, "clear-bits {label} (unknown label)"),
            Op::MaterializeIds => write!(f, "materialize-ids"),
            Op::TopKHeap { k } => write!(f, "topk-heap k={k}"),
            Op::IntersectCsr { node, targets } => write!(
                f,
                "intersect-csr node={node} targets[{}..{}]",
                targets.start, targets.end
            ),
            Op::WildcardSet { node } => {
                write!(f, "wildcard-set node={node} (unconstrained)")
            }
            Op::GroupShapes => write!(f, "group-shapes"),
            Op::MatchShapes { mode } => write!(f, "match-shapes {}", mode.name()),
            Op::FoldProb { mode } => write!(f, "fold-prob {}", mode.name()),
            Op::AggFold { func } => write!(f, "agg-fold {func}"),
            Op::EmitAnswers => write!(f, "emit-answers"),
        }
    }
}

/// A compiled query: a flat `Vec<Op>` plus the inlined constants it runs
/// over. Programs are immutable after compilation and shared via `Arc`
/// from the engine's program cache; `Display` renders the numbered
/// listing `uxm explain` prints.
#[derive(Clone, Debug)]
pub struct Program {
    /// The twig pattern the program answers (structure and predicates
    /// are interpreted by the shared matcher at `MatchShapes`).
    pub(crate) pattern: TwigPattern,
    /// Rewrite-set granularity.
    pub(crate) mode: SetMode,
    /// The instruction stream, executed front to back exactly once.
    pub(crate) ops: Vec<Op>,
    /// Flat arena of per-query-node target-schema candidates;
    /// [`Op::IntersectCsr`] ops slice it by range. Each slice is sorted
    /// by node id.
    pub(crate) targets: Vec<SchemaNodeId>,
    /// Number of query nodes (rows per slot in the shape arena).
    pub(crate) n_nodes: usize,
    /// Mapping-set width the bitset register is sized to.
    pub(crate) n_mappings: usize,
}

impl Program {
    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True for a program with no instructions (never produced by the
    /// compiler; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The instruction stream, for inspection.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The listing as one line per op (what [`Program`]'s `Display`
    /// joins with newlines) — the JSON form of `explain` emits this as
    /// an array.
    pub fn listing(&self) -> Vec<String> {
        self.ops
            .iter()
            .enumerate()
            .map(|(i, op)| format!("{i:>3}  {op}"))
            .collect()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "program for `{}` ({}, {} ops, {} target candidates, |M|={})",
            self.pattern,
            self.mode.name(),
            self.ops.len(),
            self.targets.len(),
            self.n_mappings
        )?;
        for line in self.listing() {
            writeln!(f, "{line}")?;
        }
        Ok(())
    }
}
