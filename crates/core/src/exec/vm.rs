//! The interpreter VM: one branch-light match-on-opcode loop over flat
//! registers.
//!
//! Register model (see `docs/execution.md`):
//!
//! * `bits` — the mapping liveness bitset (`⌈|M|/64⌉` words). Seeded by
//!   `init-bits`, narrowed by `and-relevance`, and used as the kill set
//!   by `intersect-csr` when a rewrite comes up empty.
//! * `ids` — the materialized mapping-id list; its order is the answer
//!   order (ascending, or top-k order after `topk-heap`). Slot `i` of
//!   every later register refers to `ids[i]`.
//! * the **shape arena** — one flat `u32` buffer holding every slot's
//!   per-node rewrite set (source symbols or source schema nodes),
//!   node-major, with a flat offset table beside it. No per-mapping or
//!   per-op allocation: both buffers grow once and are sliced.
//!
//! The loop allocates output only where the recursive evaluators do
//! (match vectors and answers); everything else is reused flat storage.

use super::program::{FoldMode, Op, Program, SetMode};
use crate::aggregate::{self, AggRow};
use crate::engine::{node_sets_to_matches, par_run, SessionState};
use crate::mapping::{MappingId, PossibleMappings};
use crate::ptq::{PtqAnswer, PtqResult};
use std::cmp::Ordering;
use uxm_twig::{match_twig, ResolvedPattern, TwigMatch};
use uxm_xml::{Document, LabelId, PathIndex, SchemaNodeId};

/// What a program runs against: borrowed views of one engine session's
/// columnar arenas. Node-granularity programs additionally carry the
/// engine's path index.
pub(crate) struct EngineCtx<'a> {
    /// The mapping set (CSR correspondence rows + probability column).
    pub pm: &'a PossibleMappings,
    /// The document the twig matcher scans.
    pub doc: &'a Document,
    /// The session state (relevance bitset columns, symbol projections).
    pub state: &'a SessionState,
    /// The path index; `Some` for [`SetMode::SchemaNodes`] programs.
    pub index: Option<&'a PathIndex>,
}

impl Program {
    /// Executes the program against one engine session and returns the
    /// raw per-mapping result (the same shape the recursive evaluators
    /// produce; the engine applies granularity shaping on top), plus
    /// the per-mapping aggregate rows when the program ends in an
    /// `agg-fold` op.
    pub(crate) fn run(&self, ctx: &EngineCtx<'_>) -> (PtqResult, Option<Vec<AggRow>>) {
        let n_words = self.n_mappings.div_ceil(64);
        let n_nodes = self.n_nodes;

        // Registers.
        let mut bits: Vec<u64> = vec![0; n_words];
        let mut ids: Vec<MappingId> = Vec::new();
        // The two reusable scratch buffers: the shape arena and its
        // offset table. `offsets[0] == 0`; the span of (node j, slot i)
        // is `offsets[j*n_slots + i] .. offsets[j*n_slots + i + 1]`.
        let mut arena: Vec<u32> = Vec::new();
        let mut offsets: Vec<u32> = Vec::new();
        // Grouping state produced by `group-shapes`, consumed downstream.
        let mut reps: Vec<u32> = Vec::new();
        let mut group_of: Vec<u32> = Vec::new();
        let mut group_matches: Vec<Vec<TwigMatch>> = Vec::new();
        let mut answers: Vec<PtqAnswer> = Vec::new();
        let mut agg_rows: Option<Vec<AggRow>> = None;

        let alive = |bits: &[u64], id: MappingId| bits[id.0 as usize / 64] >> (id.0 % 64) & 1 == 1;
        let kill =
            |bits: &mut [u64], id: MappingId| bits[id.0 as usize / 64] &= !(1 << (id.0 % 64));
        // Lexicographic comparison of two slots' shape rows, node by node.
        let row_cmp = |arena: &[u32], offsets: &[u32], n_slots: usize, a: usize, b: usize| {
            for j in 0..n_nodes {
                let (asr, aer) = (offsets[j * n_slots + a], offsets[j * n_slots + a + 1]);
                let (bsr, ber) = (offsets[j * n_slots + b], offsets[j * n_slots + b + 1]);
                match arena[asr as usize..aer as usize].cmp(&arena[bsr as usize..ber as usize]) {
                    Ordering::Equal => {}
                    other => return other,
                }
            }
            Ordering::Equal
        };

        for op in &self.ops {
            match op {
                Op::InitBits => {
                    bits.fill(!0u64);
                    let tail = self.n_mappings % 64;
                    if tail != 0 {
                        *bits.last_mut().expect("n_mappings > 0 when tail > 0") =
                            (1u64 << tail) - 1;
                    }
                }
                Op::AndRelevance { sym, .. } => {
                    for (w, r) in bits.iter_mut().zip(ctx.state.relevance_words(*sym)) {
                        *w &= r;
                    }
                }
                Op::ClearBits { .. } => bits.fill(0),
                Op::MaterializeIds => {
                    ids.clear();
                    for (wi, &word) in bits.iter().enumerate() {
                        let mut w = word;
                        while w != 0 {
                            let b = w.trailing_zeros();
                            ids.push(MappingId((wi * 64) as u32 + b));
                            w &= w - 1;
                        }
                    }
                }
                Op::TopKHeap { k } => {
                    ids.sort_by(|&a, &b| {
                        ctx.pm
                            .mapping(b)
                            .prob
                            .total_cmp(&ctx.pm.mapping(a).prob)
                            .then(a.cmp(&b))
                    });
                    ids.truncate(*k);
                }
                Op::IntersectCsr { node, targets } => {
                    let n_slots = ids.len();
                    if *node == 0 {
                        arena.clear();
                        offsets.clear();
                        offsets.reserve(n_nodes * n_slots + 1);
                        offsets.push(0);
                    }
                    let tgts = &self.targets[targets.start as usize..targets.end as usize];
                    for &id in ids.iter().take(n_slots) {
                        let start = arena.len();
                        if alive(&bits, id) {
                            // Merge-intersect the mapping's CSR row
                            // (sorted by target) with the compiled
                            // candidates (sorted), projecting hits.
                            let pairs = ctx.pm.mapping(id).pairs;
                            let (mut pi, mut ti) = (0usize, 0usize);
                            while pi < pairs.len() && ti < tgts.len() {
                                let (s, t) = pairs[pi];
                                match t.cmp(&tgts[ti]) {
                                    Ordering::Less => pi += 1,
                                    Ordering::Greater => ti += 1,
                                    Ordering::Equal => {
                                        arena.push(match self.mode {
                                            SetMode::Symbols => ctx.state.source_sym(s).0,
                                            SetMode::SchemaNodes => s.0,
                                        });
                                        pi += 1;
                                        ti += 1;
                                    }
                                }
                            }
                            if arena.len() == start {
                                kill(&mut bits, id);
                            } else {
                                arena[start..].sort_unstable();
                                let mut w = start + 1;
                                for r in start + 1..arena.len() {
                                    if arena[r] != arena[w - 1] {
                                        arena[w] = arena[r];
                                        w += 1;
                                    }
                                }
                                arena.truncate(w);
                            }
                        }
                        offsets.push(arena.len() as u32);
                    }
                }
                Op::WildcardSet { node } => {
                    // A wildcard has no rewrite set: push one empty row
                    // per slot (the matcher reads the empty set as "any
                    // document node") and kill nothing.
                    let n_slots = ids.len();
                    if *node == 0 {
                        arena.clear();
                        offsets.clear();
                        offsets.reserve(n_nodes * n_slots + 1);
                        offsets.push(0);
                    }
                    for _ in 0..n_slots {
                        offsets.push(arena.len() as u32);
                    }
                }
                Op::GroupShapes => {
                    let n_slots = ids.len();
                    reps.clear();
                    group_of.clear();
                    group_of.resize(n_slots, u32::MAX);
                    let mut order: Vec<u32> = (0..n_slots as u32)
                        .filter(|&i| alive(&bits, ids[i as usize]))
                        .collect();
                    order.sort_unstable_by(|&a, &b| {
                        row_cmp(&arena, &offsets, n_slots, a as usize, b as usize)
                    });
                    for &slot in &order {
                        let fresh = match reps.last() {
                            None => true,
                            Some(&p) => {
                                row_cmp(&arena, &offsets, n_slots, slot as usize, p as usize)
                                    != Ordering::Equal
                            }
                        };
                        if fresh {
                            reps.push(slot);
                        }
                        group_of[slot as usize] = (reps.len() - 1) as u32;
                    }
                }
                Op::MatchShapes { mode } => {
                    let n_slots = ids.len();
                    group_matches = par_run(reps.len(), |g| {
                        let slot = reps[g] as usize;
                        let span = |j: usize| {
                            let base = j * n_slots + slot;
                            &arena[offsets[base] as usize..offsets[base + 1] as usize]
                        };
                        match mode {
                            SetMode::Symbols => {
                                let label_sets: Vec<Vec<LabelId>> = (0..n_nodes)
                                    .map(|j| {
                                        span(j)
                                            .iter()
                                            .filter_map(|&raw| ctx.state.doc_label_raw(raw))
                                            .collect()
                                    })
                                    .collect();
                                match ResolvedPattern::with_label_ids(&self.pattern, label_sets) {
                                    Some(resolved) => match_twig(ctx.doc, &resolved),
                                    None => Vec::new(),
                                }
                            }
                            SetMode::SchemaNodes => {
                                let sets: Vec<Vec<SchemaNodeId>> = (0..n_nodes)
                                    .map(|j| span(j).iter().map(|&raw| SchemaNodeId(raw)).collect())
                                    .collect();
                                node_sets_to_matches(
                                    &self.pattern,
                                    &sets,
                                    ctx.pm,
                                    ctx.doc,
                                    ctx.index.expect("node-granularity programs carry an index"),
                                )
                            }
                        }
                    });
                }
                Op::FoldProb { mode } => {
                    answers = ids
                        .iter()
                        .enumerate()
                        .filter(|&(_, &id)| alive(&bits, id))
                        .map(|(i, &id)| PtqAnswer {
                            mapping: id,
                            probability: ctx.pm.mapping(id).prob,
                            matches: group_matches[group_of[i] as usize].clone(),
                        })
                        .collect();
                    debug_assert!(
                        match mode {
                            FoldMode::PerMapping =>
                                answers.windows(2).all(|w| w[0].mapping < w[1].mapping),
                            FoldMode::TopOrder => answers.windows(2).all(|w| {
                                w[0].probability > w[1].probability
                                    || (w[0].probability == w[1].probability
                                        && w[0].mapping < w[1].mapping)
                            }),
                        },
                        "fold-prob emission order violated"
                    );
                }
                Op::AggFold { func } => {
                    let subject = self.pattern.spine_leaf();
                    agg_rows = Some(
                        answers
                            .iter()
                            .map(|a| AggRow {
                                mapping: a.mapping,
                                probability: a.probability,
                                value: aggregate::row_value(*func, &a.matches, subject, ctx.doc),
                            })
                            .collect(),
                    );
                }
                Op::EmitAnswers => {}
            }
        }
        (PtqResult { answers }, agg_rows)
    }
}
