//! Lowering a planner-annotated query into a flat [`Program`].
//!
//! Compilation resolves every name once — query labels to interned
//! symbols, symbols to target-schema candidate lists — and inlines the
//! results into the program as constants, so the interpreter never
//! touches the symbol table, the schemas, or any per-node tree walk.
//! The pipeline mirrors Algorithm 3's phases exactly (filter → rewrite
//! → resolve → match → fold), which is what makes the compiled backend
//! answer-identical to the recursive evaluators by construction.

use super::program::{FoldMode, Op, Program, SetMode};
use crate::aggregate::AggFunc;
use crate::engine::SessionState;
use uxm_twig::TwigPattern;

/// Lowers `pattern` into a [`Program`] against one engine session.
///
/// The emitted shape is fixed:
///
/// ```text
/// init-bits
/// and-relevance / clear-bits     (one per distinct non-wildcard label)
/// materialize-ids
/// topk-heap k                    (top-k queries only)
/// intersect-csr / wildcard-set   (one per query node)
/// group-shapes
/// match-shapes
/// fold-prob
/// agg-fold                       (aggregate queries only)
/// emit-answers
/// ```
///
/// A wildcard query node contributes nothing to phase 1 (it constrains
/// no mapping) and lowers to `wildcard-set` in phase 2. Value predicates
/// need no ops of their own: the pattern travels with the program and
/// the shared matcher interprets them at `match-shapes`, exactly as the
/// recursive evaluators do.
///
/// Programs embed session symbols and schema node ids, so they are only
/// valid against the engine whose [`SessionState`] compiled them — the
/// per-engine program cache enforces that.
pub(crate) fn compile(
    pattern: &TwigPattern,
    mode: SetMode,
    k: Option<usize>,
    agg: Option<AggFunc>,
    state: &SessionState,
) -> Program {
    let qsyms = state.query_syms(pattern);
    let n_nodes = qsyms.len();
    let mut ops: Vec<Op> = Vec::with_capacity(n_nodes * 2 + 6);

    // Phase 1 — the paper's filter_mappings as bitset ANDs, one op per
    // distinct query label (ANDing a column twice is a no-op; compile it
    // out). Wildcards match under every mapping and compile to nothing
    // here.
    ops.push(Op::InitBits);
    let mut seen_labels: Vec<&str> = Vec::with_capacity(n_nodes);
    for (id, qs) in pattern.ids().zip(&qsyms) {
        if pattern.node(id).is_wildcard() {
            continue;
        }
        let label = pattern.node(id).label.as_str();
        if seen_labels.contains(&label) {
            continue;
        }
        seen_labels.push(label);
        match qs.sym {
            Some(s) => ops.push(Op::AndRelevance {
                sym: s,
                label: label.to_string(),
            }),
            None => ops.push(Op::ClearBits {
                label: label.to_string(),
            }),
        }
    }
    ops.push(Op::MaterializeIds);
    if let Some(k) = k {
        ops.push(Op::TopKHeap { k });
    }

    // Phase 2 — per-node rewrites: inline each node's target-candidate
    // list into one flat arena, sorted so the VM can merge-intersect it
    // against the mappings' target-sorted CSR rows. Wildcards have no
    // candidates to intersect: they push empty-but-satisfiable rows.
    let mut targets = Vec::new();
    for (node, qs) in qsyms.iter().enumerate() {
        if qs.wild {
            ops.push(Op::WildcardSet { node: node as u32 });
            continue;
        }
        let start = targets.len() as u32;
        targets.extend_from_slice(state.target_nodes(qs.sym));
        targets[start as usize..].sort_unstable();
        ops.push(Op::IntersectCsr {
            node: node as u32,
            targets: start..targets.len() as u32,
        });
    }

    // Phase 3 — share the matcher across identical shapes, then fold the
    // probability column into per-mapping answers (and, for aggregate
    // queries, each answer's match set into one scalar row).
    ops.push(Op::GroupShapes);
    ops.push(Op::MatchShapes { mode });
    ops.push(Op::FoldProb {
        mode: if k.is_some() {
            FoldMode::TopOrder
        } else {
            FoldMode::PerMapping
        },
    });
    if let Some(func) = agg {
        ops.push(Op::AggFold { func });
    }
    ops.push(Op::EmitAnswers);

    Program {
        pattern: pattern.clone(),
        mode,
        ops,
        targets,
        n_nodes,
        n_mappings: state.n_mappings(),
    }
}
