//! The per-engine program cache: compile once, replay on every
//! repeated query.
//!
//! Keys are the **canonical query shape** — the execution granularity,
//! the top-k bound, and the pattern's canonical rendering. Symbols and
//! target candidates are resolved *into* the cached program (compile
//! inlines them as constants), which is why the cache must be
//! per-engine: a program is only meaningful against the session whose
//! arenas it was compiled over.

use super::program::{Program, SetMode};
use crate::aggregate::AggFunc;
use crate::engine::Sharded;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Upper bound on cached programs per shard (the same wholesale-clear
/// discipline as the engine's rewrite caches; ~1024 programs total).
const PROGRAMS_PER_SHARD: usize = 64;

/// Cumulative program-cache counters for one engine, surfaced through
/// `GET /stats` and `uxm explain`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProgramCacheStats {
    /// Lookups served by a cached program.
    pub hits: u64,
    /// Lookups that had to compile.
    pub misses: u64,
    /// Programs compiled over this engine's lifetime. Equal to `misses`
    /// unless concurrent cold lookups raced on one key (each racer
    /// compiles; last write wins, the results are identical).
    pub compiled: u64,
}

/// A sharded map from canonical query shape to its compiled [`Program`].
pub(crate) struct ProgramCache {
    shards: Sharded<Option<Arc<Program>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    compiled: AtomicU64,
}

impl ProgramCache {
    pub(crate) fn new() -> ProgramCache {
        ProgramCache {
            shards: Sharded::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            compiled: AtomicU64::new(0),
        }
    }

    /// The canonical cache key: granularity tag + top-k bound +
    /// aggregate function + the pattern's canonical rendering (so
    /// textual variants of one twig share a program, while an aggregate
    /// program — which ends in `agg-fold` — never aliases a plain PTQ
    /// over the same pattern). Predicates and wildcards need no extra
    /// key component: the canonical rendering spells them out.
    pub(crate) fn key(mode: SetMode, k: Option<usize>, agg: Option<AggFunc>, qstr: &str) -> String {
        let tag = match mode {
            SetMode::Symbols => "L",
            SetMode::SchemaNodes => "N",
        };
        let k = k.map_or("-".to_string(), |k| k.to_string());
        let agg = agg.map_or("-", AggFunc::wire_name);
        format!("{tag}:{k}:{agg}:{qstr}")
    }

    /// Returns the cached program for `key`, or compiles, caches, and
    /// returns it. The boolean is `true` on a cache hit. Compilation
    /// runs outside any lock; two threads racing on a cold key both
    /// compile identical programs and last-write-wins.
    pub(crate) fn get_or_compile(
        &self,
        key: &str,
        compile: impl FnOnce() -> Program,
    ) -> (Arc<Program>, bool) {
        if let Some(Some(hit)) = self.shards.read(key, Clone::clone) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (hit, true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.compiled.fetch_add(1, Ordering::Relaxed);
        let program = Arc::new(compile());
        self.shards.update(key, PROGRAMS_PER_SHARD, |slot| {
            *slot = Some(Arc::clone(&program));
        });
        (program, false)
    }

    /// Cumulative counters.
    pub(crate) fn stats(&self) -> ProgramCacheStats {
        ProgramCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            compiled: self.compiled.load(Ordering::Relaxed),
        }
    }
}
