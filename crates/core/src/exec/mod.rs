//! Compiled query execution: flat bytecode programs over the columnar
//! arenas.
//!
//! The recursive evaluators ([`crate::ptq`], [`crate::ptq_tree`],
//! [`crate::path_ptq`], [`crate::topk`]) re-interpret the query shape on
//! every evaluation — per-node dispatch, per-mapping rewrite calls, and
//! tree walks through branchy logic. This module lowers a
//! planner-annotated query **once** into a flat [`Program`] — a
//! `Vec<Op>` over register slots, every symbol resolved and every
//! constant inlined at compile time — and replays it from a sharded
//! per-engine [`program cache`](ProgramCacheStats) on every repeated
//! query (the compile-once/run-many shape of tree-sitter's query
//! programs).
//!
//! The three pieces:
//!
//! * **compiler** (`compile`, crate-internal) — lowers a twig pattern
//!   into the fixed pipeline `init-bits → and-relevance* →
//!   materialize-ids → [topk-heap] → (intersect-csr|wildcard-set)* →
//!   group-shapes → match-shapes → fold-prob → [agg-fold] →
//!   emit-answers`, mirroring Algorithm 3's phases exactly (value
//!   predicates travel with the pattern and are interpreted by the
//!   shared matcher at `match-shapes`);
//! * **VM** (`Program::run`, crate-internal) — one match-on-opcode loop
//!   over a mapping bitset, an id register, and a flat node-major shape
//!   arena; no per-op allocation on the warm path;
//! * **program cache** — sharded, keyed by canonical query shape
//!   (granularity tag + top-k bound + canonical pattern rendering),
//!   with hit/miss/compile counters surfaced through
//!   [`crate::api::ExecStats`] and `GET /stats`.
//!
//! **Determinism contract:** a compiled program is answer-identical to
//! the recursive evaluators at every epoch — same answers, same order,
//! same floats, same provenance — pinned by
//! `tests/engine_equivalence.rs` and `tests/prop_exec.rs`, and a warm
//! replay is identical to a cold compile. See `docs/execution.md` for
//! the instruction set and register model.
//!
//! # Examples
//!
//! Inspect the plan and the compiled listing for a query via
//! [`QueryEngine::explain`](crate::engine::QueryEngine::explain) (what
//! `uxm explain` prints):
//!
//! ```
//! use uxm_core::api::Query;
//! use uxm_core::engine::QueryEngine;
//! use uxm_core::block_tree::BlockTreeConfig;
//! use uxm_core::mapping::PossibleMappings;
//! use uxm_matching::Matcher;
//! use uxm_twig::TwigPattern;
//! use uxm_xml::{DocGenConfig, Document, Schema};
//!
//! let source = Schema::parse_outline("Order(Buyer(Name) Item(Price))").unwrap();
//! let target = Schema::parse_outline("PO(Vendor(ContactName) Line(UnitPrice))").unwrap();
//! let matching = Matcher::default().match_schemas(&source, &target);
//! let pm = PossibleMappings::top_h(&matching, 8);
//! let doc = Document::generate(&source, &DocGenConfig::small(), 7);
//! let engine = QueryEngine::build(pm, doc, &BlockTreeConfig::default());
//!
//! let query = Query::ptq(TwigPattern::parse("PO//ContactName").unwrap());
//! let explain = engine.explain(&query).unwrap();
//! let program = explain.program.as_ref().unwrap();
//! assert!(program.len() >= 7, "filter, rewrite, match, fold phases");
//! let listing = program.listing().join("\n");
//! assert!(listing.contains("intersect-csr"));
//! // Running the same query honors the plan `explain` reported.
//! let response = engine.run(&query).unwrap();
//! assert_eq!(response.stats.plan.evaluator, explain.plan.evaluator);
//! ```

mod cache;
mod compile;
mod program;
mod vm;

pub use cache::ProgramCacheStats;
pub use program::{FoldMode, Op, Program, SetMode};

pub(crate) use cache::ProgramCache;
pub(crate) use compile::compile;
pub(crate) use vm::EngineCtx;

use crate::api::EvaluatorHint;
use crate::json::Json;
use crate::planner::{Evaluator, Plan, PlannerStats};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// The `UXM_EXEC` environment toggle, read once per process: `force`
/// (or `on`) makes every *auto* plan run the compiled backend, `off`
/// remaps auto compiled plans to the recursive naive evaluator. Pinned
/// evaluator hints are always honored — the toggle is the differential
/// harness's switch, not a policy override for explicit requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ExecMode {
    /// Follow the planner (unset or unrecognized value).
    Planner,
    /// Auto plans always execute compiled.
    Force,
    /// Auto plans never execute compiled.
    Off,
}

pub(crate) fn exec_mode() -> ExecMode {
    static MODE: OnceLock<ExecMode> = OnceLock::new();
    *MODE.get_or_init(|| match std::env::var("UXM_EXEC").as_deref() {
        Ok("force") | Ok("on") => ExecMode::Force,
        Ok("off") => ExecMode::Off,
        _ => ExecMode::Planner,
    })
}

/// Applies the `UXM_EXEC` toggle to an auto plan (pinned hints pass
/// through untouched). The plan *reason* is preserved: the toggle
/// swaps the backend, it does not rewrite why the planner chose it.
pub(crate) fn apply_env(hint: EvaluatorHint, plan: Plan) -> Plan {
    if hint != EvaluatorHint::Auto {
        return plan;
    }
    match exec_mode() {
        ExecMode::Planner => plan,
        ExecMode::Force => Plan {
            evaluator: Evaluator::Compiled,
            reason: plan.reason,
        },
        ExecMode::Off => match plan.evaluator {
            Evaluator::Compiled => Plan {
                evaluator: Evaluator::Naive,
                reason: plan.reason,
            },
            _ => plan,
        },
    }
}

/// What `uxm explain` (and `explain: true` on `/query`) reports: the
/// chosen plan, the planner's inputs, and the compiled program listing.
///
/// Returned by
/// [`QueryEngine::explain`](crate::engine::QueryEngine::explain). For
/// PTQ-shaped queries the program is always included — when the plan
/// picks a recursive evaluator, it is the program a
/// [`EvaluatorHint::Compiled`] pin would run. Keyword queries have a
/// single evaluator and no compiled form.
#[derive(Clone, Debug)]
pub struct Explain {
    /// The plan [`QueryEngine::run`](crate::engine::QueryEngine::run)
    /// would execute right now (cache warmth included).
    pub plan: Plan,
    /// The measured statistics the planner decided from; `None` for
    /// keyword queries (no planning happens).
    pub planner: Option<PlannerStats>,
    /// The compiled program; `None` for keyword queries.
    pub program: Option<Arc<Program>>,
}

impl Explain {
    /// The canonical JSON form (alphabetical keys), embedded in `/query`
    /// responses under `"explain"` when requested.
    pub fn to_json(&self) -> Json {
        let planner = match &self.planner {
            None => Json::Null,
            Some(p) => Json::Obj(vec![
                ("avg_block_fanout".into(), Json::Num(p.avg_block_fanout)),
                ("block_count".into(), Json::uint(p.block_count as u64)),
                ("cache_warm".into(), Json::Bool(p.cache_warm)),
                (
                    "min_rewrite_postings".into(),
                    Json::uint(p.min_rewrite_postings as u64),
                ),
                ("pred_selectivity".into(), Json::Num(p.pred_selectivity)),
                (
                    "relevant_mappings".into(),
                    Json::uint(p.relevant_mappings as u64),
                ),
                (
                    "total_rewrite_postings".into(),
                    Json::uint(p.total_rewrite_postings as u64),
                ),
                (
                    "value_predicates".into(),
                    Json::uint(p.value_predicates as u64),
                ),
                ("wildcard_nodes".into(), Json::uint(p.wildcard_nodes as u64)),
            ]),
        };
        let program = match &self.program {
            None => Json::Null,
            Some(p) => Json::Arr(p.listing().into_iter().map(Json::str).collect()),
        };
        Json::Obj(vec![
            (
                "evaluator".into(),
                Json::str(self.plan.evaluator.wire_name()),
            ),
            (
                "plan_reason".into(),
                Json::str(self.plan.reason.wire_name()),
            ),
            ("planner".into(), planner),
            ("program".into(), program),
        ])
    }
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "plan: {} ({})", self.plan.evaluator, self.plan.reason)?;
        if let Some(p) = &self.planner {
            writeln!(
                f,
                "planner: relevant={} blocks={} fanout={:.2} postings(min/total)={}/{} \
                 warm={} preds={} sel={:.2} wild={}",
                p.relevant_mappings,
                p.block_count,
                p.avg_block_fanout,
                p.min_rewrite_postings,
                p.total_rewrite_postings,
                p.cache_warm,
                p.value_predicates,
                p.pred_selectivity,
                p.wildcard_nodes
            )?;
        }
        match &self.program {
            Some(program) => write!(f, "{program}"),
            None => writeln!(f, "no compiled form (single-evaluator query kind)"),
        }
    }
}
