//! Binary storage for mapping sets — plain and block-compressed.
//!
//! The paper's compression ratio (§VI-2) is a storage metric; this module
//! makes it concrete: a mapping set can be serialized *verbatim*
//! ([`encode_plain`]) or *through its block tree* ([`encode_compressed`]):
//! blocks are stored once, and each mapping stores block pointers plus
//! residual correspondences (the output of
//! [`crate::compress::compress`]). Both decode back to an identical
//! [`PossibleMappings`].
//!
//! The format uses LEB128 varints for ids and counts, so the on-disk sizes
//! reflect genuine entropy, not padding.

use crate::block::Block;
use crate::block_tree::BlockTree;
use crate::compress::compress;
use crate::mapping::{Mapping, MappingId, PossibleMappings};
use std::fmt;
use uxm_xml::{Schema, SchemaNodeId};

const MAGIC_PLAIN: &[u8; 4] = b"UXM0";
const MAGIC_BLOCK: &[u8; 4] = b"UXM1";

/// Decode failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Wrong magic bytes or format mismatch.
    BadMagic,
    /// Input ended mid-value.
    Truncated,
    /// A stored id exceeds the schema / block table bounds.
    IdOutOfRange,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad magic / wrong format"),
            DecodeError::Truncated => write!(f, "truncated input"),
            DecodeError::IdOutOfRange => write!(f, "stored id out of range"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serializes the mapping set verbatim.
pub fn encode_plain(pm: &PossibleMappings) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC_PLAIN);
    put_varint(&mut out, pm.len() as u64);
    for (_, m) in pm.iter() {
        out.extend_from_slice(&m.score.to_le_bits_bytes());
        out.extend_from_slice(&m.prob.to_le_bits_bytes());
        put_varint(&mut out, m.pairs.len() as u64);
        for &(s, t) in &m.pairs {
            put_varint(&mut out, s.0 as u64);
            put_varint(&mut out, t.0 as u64);
        }
    }
    out
}

/// Deserializes a verbatim mapping set (schemas travel out of band — they
/// are part of the matching, not the mapping set).
pub fn decode_plain(
    bytes: &[u8],
    source: Schema,
    target: Schema,
) -> Result<PossibleMappings, DecodeError> {
    let mut r = Reader::new(bytes);
    r.expect_magic(MAGIC_PLAIN)?;
    let n = r.varint()? as usize;
    let mut mappings = Vec::with_capacity(n);
    for _ in 0..n {
        let score = r.f64()?;
        let prob = r.f64()?;
        let pairs = r.pairs(source.len(), target.len())?;
        mappings.push(Mapping { pairs, score, prob });
    }
    r.finish()?;
    Ok(PossibleMappings::from_parts(source, target, mappings))
}

/// Serializes the mapping set through its block tree: blocks once,
/// then per mapping (score, prob, block pointers, residual pairs).
pub fn encode_compressed(pm: &PossibleMappings, tree: &BlockTree) -> Vec<u8> {
    let cm = compress(pm, tree);
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC_BLOCK);
    put_varint(&mut out, tree.min_support as u64);
    put_varint(&mut out, tree.blocks().len() as u64);
    for b in tree.blocks() {
        put_varint(&mut out, b.anchor.0 as u64);
        put_varint(&mut out, b.corrs.len() as u64);
        for &(s, t) in &b.corrs {
            put_varint(&mut out, s.0 as u64);
            put_varint(&mut out, t.0 as u64);
        }
        put_varint(&mut out, b.mappings.len() as u64);
        for &m in &b.mappings {
            put_varint(&mut out, m.0 as u64);
        }
    }
    put_varint(&mut out, pm.len() as u64);
    for (mid, m) in pm.iter() {
        let c = &cm.mappings[mid.idx()];
        out.extend_from_slice(&m.score.to_le_bits_bytes());
        out.extend_from_slice(&m.prob.to_le_bits_bytes());
        put_varint(&mut out, c.blocks.len() as u64);
        for &b in &c.blocks {
            put_varint(&mut out, b.0 as u64);
        }
        put_varint(&mut out, c.residual.len() as u64);
        for &(s, t) in &c.residual {
            put_varint(&mut out, s.0 as u64);
            put_varint(&mut out, t.0 as u64);
        }
    }
    out
}

/// Deserializes a block-compressed mapping set, reconstructing both the
/// block tree and the full mappings.
pub fn decode_compressed(
    bytes: &[u8],
    source: Schema,
    target: Schema,
) -> Result<(PossibleMappings, BlockTree), DecodeError> {
    let mut r = Reader::new(bytes);
    r.expect_magic(MAGIC_BLOCK)?;
    let min_support = r.varint()? as usize;
    let n_blocks = r.varint()? as usize;
    let mut blocks = Vec::with_capacity(n_blocks);
    for _ in 0..n_blocks {
        let anchor = r.varint()? as u32;
        if anchor as usize >= target.len() {
            return Err(DecodeError::IdOutOfRange);
        }
        let corrs = r.pairs(source.len(), target.len())?;
        let n_m = r.varint()? as usize;
        let mut mappings = Vec::with_capacity(n_m);
        for _ in 0..n_m {
            mappings.push(MappingId(r.varint()? as u32));
        }
        blocks.push(Block {
            anchor: SchemaNodeId(anchor),
            corrs,
            mappings,
        });
    }
    let tree = BlockTree::from_blocks(&target, blocks, min_support);

    let n = r.varint()? as usize;
    let mut mappings = Vec::with_capacity(n);
    for _ in 0..n {
        let score = r.f64()?;
        let prob = r.f64()?;
        let n_b = r.varint()? as usize;
        let mut pairs: Vec<(SchemaNodeId, SchemaNodeId)> = Vec::new();
        for _ in 0..n_b {
            let b = r.varint()? as usize;
            let block = tree.blocks().get(b).ok_or(DecodeError::IdOutOfRange)?;
            pairs.extend_from_slice(&block.corrs);
        }
        pairs.extend(r.pairs(source.len(), target.len())?);
        pairs.sort_by_key(|&(s, t)| (t, s));
        pairs.dedup();
        mappings.push(Mapping { pairs, score, prob });
    }
    r.finish()?;
    Ok((PossibleMappings::from_parts(source, target, mappings), tree))
}

/// Measured on-disk compression ratio: `1 - compressed / plain`.
pub fn measured_compression_ratio(pm: &PossibleMappings, tree: &BlockTree) -> f64 {
    let plain = encode_plain(pm).len() as f64;
    let compressed = encode_compressed(pm, tree).len() as f64;
    1.0 - compressed / plain
}

// ---------------------------------------------------------------------
// varint plumbing

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

trait F64Bytes {
    fn to_le_bits_bytes(self) -> [u8; 8];
}

impl F64Bytes for f64 {
    fn to_le_bits_bytes(self) -> [u8; 8] {
        self.to_bits().to_le_bytes()
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn expect_magic(&mut self, magic: &[u8; 4]) -> Result<(), DecodeError> {
        if self.bytes.len() < 4 {
            return Err(DecodeError::Truncated);
        }
        if &self.bytes[..4] != magic {
            return Err(DecodeError::BadMagic);
        }
        self.pos = 4;
        Ok(())
    }

    fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut v = 0u64;
        let mut shift = 0;
        loop {
            let byte = *self.bytes.get(self.pos).ok_or(DecodeError::Truncated)?;
            self.pos += 1;
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return Err(DecodeError::Truncated);
            }
        }
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        let end = self.pos + 8;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(DecodeError::Truncated)?;
        self.pos = end;
        Ok(f64::from_bits(u64::from_le_bytes(
            slice.try_into().expect("8 bytes"),
        )))
    }

    fn pairs(
        &mut self,
        n_source: usize,
        n_target: usize,
    ) -> Result<Vec<(SchemaNodeId, SchemaNodeId)>, DecodeError> {
        let n = self.varint()? as usize;
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let s = self.varint()? as u32;
            let t = self.varint()? as u32;
            if s as usize >= n_source || t as usize >= n_target {
                return Err(DecodeError::IdOutOfRange);
            }
            out.push((SchemaNodeId(s), SchemaNodeId(t)));
        }
        Ok(out)
    }

    fn finish(&self) -> Result<(), DecodeError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(DecodeError::Truncated)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_tree::BlockTreeConfig;
    use uxm_matching::Matcher;

    fn workload() -> (PossibleMappings, BlockTree) {
        let source = Schema::parse_outline(
            "Order(Buyer(Name Contact(EMail)) POLine(LineNo Quantity UnitPrice))",
        )
        .unwrap();
        let target =
            Schema::parse_outline("PO(Purchaser(PName PContact(PEMail)) Line(No Qty Amount))")
                .unwrap();
        let matching = Matcher::context().match_schemas(&source, &target);
        let pm = PossibleMappings::top_h(&matching, 24);
        let tree = BlockTree::build(&target, &pm, &BlockTreeConfig::default());
        (pm, tree)
    }

    fn assert_same_mappings(a: &PossibleMappings, b: &PossibleMappings) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.1, y.1);
        }
    }

    #[test]
    fn plain_roundtrip() {
        let (pm, _) = workload();
        let bytes = encode_plain(&pm);
        let back = decode_plain(&bytes, pm.source.clone(), pm.target.clone()).unwrap();
        assert_same_mappings(&pm, &back);
    }

    #[test]
    fn compressed_roundtrip_restores_mappings_and_tree() {
        let (pm, tree) = workload();
        let bytes = encode_compressed(&pm, &tree);
        let (back, back_tree) =
            decode_compressed(&bytes, pm.source.clone(), pm.target.clone()).unwrap();
        assert_same_mappings(&pm, &back);
        assert_eq!(tree.blocks(), back_tree.blocks());
        assert_eq!(tree.min_support, back_tree.min_support);
        // rebuilt index answers lookups
        for b in tree.blocks() {
            assert!(back_tree.has_blocks(b.anchor));
        }
    }

    #[test]
    fn compressed_is_smaller_on_overlapping_sets() {
        // A heavily-overlapping set (the regime the paper targets): a
        // shared 9-element subtree across 60 mappings varying in one leaf.
        let source = Schema::parse_outline("O(A0 A1 A2 A3 A4 A5 A6 A7 A8 B1 B2)").unwrap();
        let target = Schema::parse_outline("R(X(C1 C2 C3 C4 C5 C6 C7 C8) Y)").unwrap();
        let s = |l: &str| source.nodes_with_label(l)[0];
        let t = |l: &str| target.nodes_with_label(l)[0];
        let mut shared = vec![(s("A0"), t("X"))];
        for i in 1..=8 {
            shared.push((s(&format!("A{i}")), t(&format!("C{i}"))));
        }
        let sets = (0..60)
            .map(|i| {
                let mut pairs = shared.clone();
                pairs.push((s(if i % 2 == 0 { "B1" } else { "B2" }), t("Y")));
                (pairs, 1.0 + i as f64 * 0.01)
            })
            .collect();
        let pm = PossibleMappings::from_pairs(source, target.clone(), sets);
        let tree = BlockTree::build(&target, &pm, &BlockTreeConfig::default());
        let ratio = measured_compression_ratio(&pm, &tree);
        assert!(
            ratio > 0.1,
            "expected on-disk savings, got ratio {ratio:.3} \
             (plain {} vs compressed {})",
            encode_plain(&pm).len(),
            encode_compressed(&pm, &tree).len()
        );
    }

    #[test]
    fn detects_bad_magic() {
        let (pm, tree) = workload();
        let plain = encode_plain(&pm);
        assert_eq!(
            decode_compressed(&plain, pm.source.clone(), pm.target.clone()).unwrap_err(),
            DecodeError::BadMagic
        );
        let compressed = encode_compressed(&pm, &tree);
        assert_eq!(
            decode_plain(&compressed, pm.source.clone(), pm.target.clone()).unwrap_err(),
            DecodeError::BadMagic
        );
    }

    #[test]
    fn detects_truncation() {
        let (pm, _) = workload();
        let bytes = encode_plain(&pm);
        for cut in [3, bytes.len() / 2, bytes.len() - 1] {
            let err =
                decode_plain(&bytes[..cut], pm.source.clone(), pm.target.clone()).unwrap_err();
            assert_eq!(err, DecodeError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn detects_out_of_range_ids() {
        let (pm, _) = workload();
        let bytes = encode_plain(&pm);
        // shrink the target schema so stored ids overflow it
        let tiny = Schema::parse_outline("X").unwrap();
        let err = decode_plain(&bytes, pm.source.clone(), tiny).unwrap_err();
        assert_eq!(err, DecodeError::IdOutOfRange);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let (pm, _) = workload();
        let mut bytes = encode_plain(&pm);
        bytes.push(0xFF);
        let err = decode_plain(&bytes, pm.source.clone(), pm.target.clone()).unwrap_err();
        assert_eq!(err, DecodeError::Truncated);
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint().unwrap(), v);
            assert!(r.finish().is_ok());
        }
    }
}
