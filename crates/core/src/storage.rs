//! Binary storage for mapping sets and whole engine sessions.
//!
//! The paper's compression ratio (§VI-2) is a storage metric; this module
//! makes it concrete: a mapping set can be serialized *verbatim*
//! ([`encode_plain`]) or *through its block tree* ([`encode_compressed`]):
//! blocks are stored once, and each mapping stores block pointers plus
//! residual correspondences (the output of
//! [`crate::compress::compress`]). Both decode back to an identical
//! [`PossibleMappings`].
//!
//! On top of the mapping codecs sits the **engine snapshot**
//! ([`encode_engine_snapshot`] / [`decode_engine_snapshot`]): one
//! versioned container holding everything a [`QueryEngine`] session owns —
//! both schemas, the block-compressed mapping set, and the source
//! document — so a [`crate::registry::EngineRegistry`] can hydrate a
//! serving engine from a single file with no out-of-band state.
//!
//! # Snapshot format (version 3, current)
//!
//! Version 3 is a **sectioned container whose sections are the resident
//! arena columns, verbatim**: a fixed-width checksummed header and
//! section table up front, then every column of the engine — document
//! label/parent/post/level columns, both CSR indexes, text/attr span
//! tables and buffers, mapping score/prob columns and the flat CSR pair
//! arena, block-tree CSR ranges — as a 4 KiB-aligned, little-endian,
//! fixed-width section with its own length and xxhash-style checksum
//! (see `docs/wire-format.md` for the byte-level grammar):
//!
//! ```text
//! magic   "UXMS"; version byte 3; three zero pad bytes
//! header  file_len (u64), section_count (u64), table xxh64 (u64)
//! table   one 48-byte entry per section:
//!         kind, offset, len, count, elem_size, xxh64 (all u64 LE)
//! ...     each section zero-padded to the next 4096-byte boundary
//! ```
//!
//! The encoder is one `extend_from_slice` per column; the decoder
//! verifies the header, validates every section's bounds / alignment /
//! count / checksum, then bulk-copies each column straight into
//! [`Document::from_raw_columns`] /
//! [`PossibleMappings::from_raw_columns`] /
//! [`crate::block_tree::BlockTree::from_raw_columns`] — no per-element
//! decoding, no derived-index recomputation. Behind the `mmap` feature
//! the registry reads snapshot files through a no-libc `mmap(2)` shim
//! (`mmap::Mmap`) instead of `read(2)`-ing them into a heap buffer.
//!
//! **Version history** (`SNAPSHOT_VERSION`):
//!
//! * **1** — initial format: schemas, a length-prefixed embedded
//!   `encode_compressed` payload, then the document with per-node
//!   text/attribute records. Still decoded (see
//!   [`decode_engine_snapshot`]); [`encode_engine_snapshot_v1`] keeps
//!   the writer alive for compatibility fixtures.
//! * **2** — columnar document and mapping sections, varint-packed:
//!   smaller files (no per-node flag bytes or length-prefixed strings)
//!   and faster hydration than v1 (the decoder feeds
//!   `Document::from_columns` / `PossibleMappings::from_columns`
//!   directly). [`encode_engine_snapshot_v2`] keeps the writer alive.
//! * **3** — page-aligned fixed-width arena sections as above: larger
//!   files (pairs stored flat, derived columns stored rather than
//!   recomputed, page padding) bought back as near-memcpy hydration.
//!   Decoders reject any other version with
//!   [`DecodeError::UnsupportedVersion`], so stale snapshot files fail
//!   loudly instead of misparsing.
//!
//! Versions 1–2 use LEB128 varints throughout; version 3 reserves
//! varints for the small `META` section (schemas, label table,
//! `min_support`) and stores every column fixed-width so hydration
//! never branches per element.
//!
//! # Examples
//!
//! A snapshot round trip preserves answers exactly (the per-dataset
//! byte-level guarantee lives in `tests/snapshot_roundtrip.rs`):
//!
//! ```
//! use uxm_core::api::Query;
//! use uxm_core::block_tree::BlockTreeConfig;
//! use uxm_core::engine::QueryEngine;
//! use uxm_core::mapping::PossibleMappings;
//! use uxm_core::storage::{decode_engine_snapshot, encode_engine_snapshot};
//! use uxm_matching::Matcher;
//! use uxm_twig::TwigPattern;
//! use uxm_xml::{DocGenConfig, Document, Schema};
//!
//! let source = Schema::parse_outline("Order(Buyer(Name) Item(Price))").unwrap();
//! let target = Schema::parse_outline("PO(Vendor(ContactName) Line(UnitPrice))").unwrap();
//! let matching = Matcher::default().match_schemas(&source, &target);
//! let pm = PossibleMappings::top_h(&matching, 8);
//! let doc = Document::generate(&source, &DocGenConfig::small(), 7);
//! let engine = QueryEngine::build(pm, doc, &BlockTreeConfig::default());
//!
//! // One self-contained artifact: schemas + compressed mappings + document.
//! let bytes = encode_engine_snapshot(&engine);
//! let restored = decode_engine_snapshot(&bytes).unwrap();
//!
//! let q = Query::ptq(TwigPattern::parse("PO//ContactName").unwrap());
//! assert_eq!(
//!     engine.run(&q).unwrap().answers,
//!     restored.run(&q).unwrap().answers,
//! );
//! ```

use crate::block::Block;
use crate::block_tree::BlockTree;
use crate::compress::compress;
use crate::engine::QueryEngine;
use crate::mapping::{Mapping, MappingId, PossibleMappings};
use std::fmt;
use uxm_xml::{ColumnError, DocNodeId, Document, LabelId, Schema, SchemaNodeId};

const MAGIC_PLAIN: &[u8; 4] = b"UXM0";
const MAGIC_BLOCK: &[u8; 4] = b"UXM1";
const MAGIC_SNAPSHOT: &[u8; 4] = b"UXMS";

/// Current engine-snapshot format version (see the module docs for the
/// version history). Encoders write this version; decoders accept it
/// **and** still read version-1 and version-2 files.
pub const SNAPSHOT_VERSION: u64 = 3;

/// Decode failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Wrong magic bytes or format mismatch.
    BadMagic,
    /// Input ended mid-value.
    Truncated,
    /// A stored id exceeds the schema / block table bounds.
    IdOutOfRange,
    /// A snapshot written by an unknown (newer or corrupted) format
    /// version; the value is the version the file claims.
    UnsupportedVersion(u64),
    /// A stored string is not valid UTF-8.
    BadString,
    /// Structurally impossible data: an empty node table, or a node whose
    /// parent does not precede it in pre-order.
    Malformed,
    /// A v3 section (or the section table itself) whose stored xxh64
    /// checksum does not match its bytes.
    BadChecksum,
    /// A v3 section offset that is not page-aligned (every section must
    /// start on a [`SECTION_ALIGN`]-byte boundary past the header).
    Misaligned,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad magic / wrong format"),
            DecodeError::Truncated => write!(f, "truncated input"),
            DecodeError::IdOutOfRange => write!(f, "stored id out of range"),
            DecodeError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (expected {SNAPSHOT_VERSION})"
                )
            }
            DecodeError::BadString => write!(f, "stored string is not valid UTF-8"),
            DecodeError::Malformed => write!(f, "structurally malformed input"),
            DecodeError::BadChecksum => write!(f, "section checksum mismatch"),
            DecodeError::Misaligned => write!(f, "section offset is not page-aligned"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serializes the mapping set verbatim.
pub fn encode_plain(pm: &PossibleMappings) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC_PLAIN);
    put_varint(&mut out, pm.len() as u64);
    for (_, m) in pm.iter() {
        out.extend_from_slice(&m.score.to_le_bits_bytes());
        out.extend_from_slice(&m.prob.to_le_bits_bytes());
        put_varint(&mut out, m.pairs.len() as u64);
        for &(s, t) in m.pairs {
            put_varint(&mut out, s.0 as u64);
            put_varint(&mut out, t.0 as u64);
        }
    }
    out
}

/// Deserializes a verbatim mapping set (schemas travel out of band — they
/// are part of the matching, not the mapping set).
pub fn decode_plain(
    bytes: &[u8],
    source: Schema,
    target: Schema,
) -> Result<PossibleMappings, DecodeError> {
    let mut r = Reader::new(bytes);
    r.expect_magic(MAGIC_PLAIN)?;
    let n = r.varint()? as usize;
    let mut mappings = Vec::with_capacity(n);
    for _ in 0..n {
        let score = r.f64()?;
        let prob = r.f64()?;
        let pairs = r.pairs(source.len(), target.len())?;
        mappings.push(Mapping { pairs, score, prob });
    }
    r.finish()?;
    Ok(PossibleMappings::from_parts(source, target, mappings))
}

/// Serializes the mapping set through its block tree: blocks once,
/// then per mapping (score, prob, block pointers, residual pairs).
pub fn encode_compressed(pm: &PossibleMappings, tree: &BlockTree) -> Vec<u8> {
    let cm = compress(pm, tree);
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC_BLOCK);
    put_varint(&mut out, tree.min_support as u64);
    put_blocks(&mut out, tree.blocks());
    put_varint(&mut out, pm.len() as u64);
    for (mid, m) in pm.iter() {
        let c = &cm.mappings[mid.idx()];
        out.extend_from_slice(&m.score.to_le_bits_bytes());
        out.extend_from_slice(&m.prob.to_le_bits_bytes());
        put_varint(&mut out, c.blocks.len() as u64);
        for &b in &c.blocks {
            put_varint(&mut out, b.0 as u64);
        }
        put_varint(&mut out, c.residual.len() as u64);
        for &(s, t) in &c.residual {
            put_varint(&mut out, s.0 as u64);
            put_varint(&mut out, t.0 as u64);
        }
    }
    out
}

/// Deserializes a block-compressed mapping set, reconstructing both the
/// block tree and the full mappings.
pub fn decode_compressed(
    bytes: &[u8],
    source: Schema,
    target: Schema,
) -> Result<(PossibleMappings, BlockTree), DecodeError> {
    let mut r = Reader::new(bytes);
    r.expect_magic(MAGIC_BLOCK)?;
    let min_support = r.varint()? as usize;
    let n_blocks = r.varint()? as usize;
    let mut blocks = Vec::with_capacity(n_blocks);
    for _ in 0..n_blocks {
        let anchor = r.varint()? as u32;
        if anchor as usize >= target.len() {
            return Err(DecodeError::IdOutOfRange);
        }
        let corrs = r.pairs(source.len(), target.len())?;
        let n_m = r.varint()? as usize;
        let mut mappings = Vec::with_capacity(n_m);
        for _ in 0..n_m {
            mappings.push(MappingId(r.varint()? as u32));
        }
        blocks.push(Block {
            anchor: SchemaNodeId(anchor),
            corrs,
            mappings,
        });
    }
    let tree = BlockTree::from_blocks(&target, blocks, min_support);

    let n = r.varint()? as usize;
    let mut mappings = Vec::with_capacity(n);
    for _ in 0..n {
        let score = r.f64()?;
        let prob = r.f64()?;
        let n_b = r.varint()? as usize;
        let mut pairs: Vec<(SchemaNodeId, SchemaNodeId)> = Vec::new();
        for _ in 0..n_b {
            let b = r.varint()? as usize;
            let block = tree.blocks().get(b).ok_or(DecodeError::IdOutOfRange)?;
            pairs.extend_from_slice(&block.corrs);
        }
        pairs.extend(r.pairs(source.len(), target.len())?);
        pairs.sort_by_key(|&(s, t)| (t, s));
        pairs.dedup();
        mappings.push(Mapping { pairs, score, prob });
    }
    r.finish()?;
    Ok((PossibleMappings::from_parts(source, target, mappings), tree))
}

/// Measured on-disk compression ratio: `1 - compressed / plain`.
pub fn measured_compression_ratio(pm: &PossibleMappings, tree: &BlockTree) -> f64 {
    let plain = encode_plain(pm).len() as f64;
    let compressed = encode_compressed(pm, tree).len() as f64;
    1.0 - compressed / plain
}

// ---------------------------------------------------------------------
// engine snapshots

/// Serializes a whole engine session — schemas, block-compressed mapping
/// set, and document — into one versioned container in the current
/// (page-aligned sectioned, version-3) layout. See the module docs for
/// the layout and [`encode_engine_snapshot_v1`] /
/// [`encode_engine_snapshot_v2`] for the legacy writers.
pub fn encode_engine_snapshot(engine: &QueryEngine) -> Vec<u8> {
    encode_engine_snapshot_v3(engine)
}

/// Serializes an engine session in an explicitly chosen snapshot format
/// version (1, 2, or 3); `None` for any other version. The CLI's
/// `registry save --snapshot-version` flag routes through this.
pub fn encode_engine_snapshot_as(engine: &QueryEngine, version: u64) -> Option<Vec<u8>> {
    match version {
        1 => Some(encode_engine_snapshot_v1(engine)),
        2 => Some(encode_engine_snapshot_v2(engine)),
        3 => Some(encode_engine_snapshot_v3(engine)),
        _ => None,
    }
}

/// The version-2 (varint columnar) snapshot writer, kept so
/// compatibility tests and fixtures can still produce v2 bytes. New
/// snapshots should use [`encode_engine_snapshot`].
pub fn encode_engine_snapshot_v2(engine: &QueryEngine) -> Vec<u8> {
    let pm = engine.mappings();
    let tree = engine.tree();
    let cm = compress(pm, tree);
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC_SNAPSHOT);
    put_varint(&mut out, 2);
    put_schema(&mut out, engine.source());
    put_schema(&mut out, engine.target());

    // Mapping section: blocks once, then columnar mapping columns.
    put_varint(&mut out, tree.min_support as u64);
    put_blocks(&mut out, tree.blocks());
    put_varint(&mut out, pm.len() as u64);
    for (_, m) in pm.iter() {
        out.extend_from_slice(&m.score.to_le_bits_bytes());
    }
    for (_, m) in pm.iter() {
        out.extend_from_slice(&m.prob.to_le_bits_bytes());
    }
    for (mid, _) in pm.iter() {
        let c = &cm.mappings[mid.idx()];
        put_varint(&mut out, c.blocks.len() as u64);
        for &b in &c.blocks {
            put_varint(&mut out, b.0 as u64);
        }
        put_varint(&mut out, c.residual.len() as u64);
        for &(s, t) in &c.residual {
            put_varint(&mut out, s.0 as u64);
            put_varint(&mut out, t.0 as u64);
        }
    }

    put_document_columnar(&mut out, engine.document());
    out
}

/// The legacy (version-1) snapshot writer, kept so compatibility tests
/// and fixtures can still produce v1 bytes. New snapshots should use
/// [`encode_engine_snapshot`].
pub fn encode_engine_snapshot_v1(engine: &QueryEngine) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC_SNAPSHOT);
    put_varint(&mut out, 1);
    put_schema(&mut out, engine.source());
    put_schema(&mut out, engine.target());
    let payload = encode_compressed(engine.mappings(), engine.tree());
    put_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    put_document(&mut out, engine.document());
    out
}

/// The decoded parts of an engine snapshot, before session-state
/// construction.
///
/// [`decode_engine_snapshot`] wraps these in [`QueryEngine::new`];
/// callers that only *inspect* a snapshot (e.g. `uxm registry list`) can
/// stop here and skip building symbol tables and relevance bitsets.
pub struct EngineSnapshot {
    /// The mapping set, decompressed through its block tree.
    pub mappings: PossibleMappings,
    /// The reconstructed block tree.
    pub tree: BlockTree,
    /// The source document.
    pub document: Document,
}

/// Peeks the format version of an engine snapshot without decoding its
/// body (`uxm stats` and the compat tooling report it).
pub fn snapshot_version(bytes: &[u8]) -> Result<u64, DecodeError> {
    let mut r = Reader::new(bytes);
    r.expect_magic(MAGIC_SNAPSHOT)?;
    r.varint()
}

/// Deserializes an engine snapshot into its parts, without building any
/// session state.
pub fn decode_engine_snapshot_parts(bytes: &[u8]) -> Result<EngineSnapshot, DecodeError> {
    let mut r = Reader::new(bytes);
    r.expect_magic(MAGIC_SNAPSHOT)?;
    let version = r.varint()?;
    match version {
        1 => {
            let source = r.schema()?;
            let target = r.schema()?;
            let payload_len = r.varint()? as usize;
            let payload = r.take(payload_len)?;
            let (mappings, tree) = decode_compressed(payload, source, target)?;
            let document = r.document()?;
            r.finish()?;
            Ok(EngineSnapshot {
                mappings,
                tree,
                document,
            })
        }
        2 => {
            let source = r.schema()?;
            let target = r.schema()?;
            let (mappings, tree) = r.columnar_mappings(source, target)?;
            let document = r.document_columnar()?;
            r.finish()?;
            Ok(EngineSnapshot {
                mappings,
                tree,
                document,
            })
        }
        3 => decode_engine_snapshot_v3(bytes),
        other => Err(DecodeError::UnsupportedVersion(other)),
    }
}

/// Deserializes an engine snapshot and rebuilds the full session state
/// (symbol tables, relevance bitsets, caches) from it. The rehydrated
/// engine answers every query identically to the one that was saved.
pub fn decode_engine_snapshot(bytes: &[u8]) -> Result<QueryEngine, DecodeError> {
    let parts = decode_engine_snapshot_parts(bytes)?;
    Ok(QueryEngine::new(parts.mappings, parts.document, parts.tree))
}

// ---------------------------------------------------------------------
// snapshot v3: page-aligned fixed-width arena sections

/// Every v3 section starts on a boundary of this many bytes (one page on
/// common platforms), so an `mmap`ed snapshot exposes naturally-aligned
/// columns.
pub const SECTION_ALIGN: usize = 4096;

/// Byte length of the fixed v3 prelude + header: magic (4), version
/// byte (1), pad (3), `file_len` / `section_count` / table xxh64
/// (3 × u64).
const V3_HEADER_LEN: usize = 32;
/// Byte length of one section-table entry: kind, offset, len, count,
/// elem_size, xxh64 (6 × u64).
const V3_ENTRY_LEN: usize = 48;

/// v3 section kinds, in canonical on-disk order.
const SEC_META: u64 = 1;
const SEC_MAP_SCORES: u64 = 2;
const SEC_MAP_PROBS: u64 = 3;
const SEC_MAP_PAIR_OFFSETS: u64 = 4;
const SEC_MAP_PAIRS: u64 = 5;
const SEC_BLK_ANCHORS: u64 = 6;
const SEC_BLK_CORR_OFFSETS: u64 = 7;
const SEC_BLK_CORRS: u64 = 8;
const SEC_BLK_MAP_OFFSETS: u64 = 9;
const SEC_BLK_MAP_IDS: u64 = 10;
const SEC_DOC_LABELS: u64 = 11;
const SEC_DOC_PARENTS: u64 = 12;
const SEC_DOC_POSTS: u64 = 13;
const SEC_DOC_LEVELS: u64 = 14;
const SEC_DOC_CHILD_OFFSETS: u64 = 15;
const SEC_DOC_CHILD_LIST: u64 = 16;
const SEC_DOC_BY_LABEL_OFFSETS: u64 = 17;
const SEC_DOC_BY_LABEL_LIST: u64 = 18;
const SEC_DOC_TEXT_SPANS: u64 = 19;
const SEC_DOC_TEXT_BUF: u64 = 20;
const SEC_DOC_ATTR_OFFSETS: u64 = 21;
const SEC_DOC_ATTR_SPANS: u64 = 22;
const SEC_DOC_ATTR_BUF: u64 = 23;

/// The canonical v3 layout: `(kind, element size in bytes)` for every
/// section, in the exact order the encoder emits and the decoder
/// requires.
const V3_LAYOUT: [(u64, u64); 23] = [
    (SEC_META, 1),
    (SEC_MAP_SCORES, 8),
    (SEC_MAP_PROBS, 8),
    (SEC_MAP_PAIR_OFFSETS, 4),
    (SEC_MAP_PAIRS, 8),
    (SEC_BLK_ANCHORS, 4),
    (SEC_BLK_CORR_OFFSETS, 4),
    (SEC_BLK_CORRS, 8),
    (SEC_BLK_MAP_OFFSETS, 4),
    (SEC_BLK_MAP_IDS, 4),
    (SEC_DOC_LABELS, 4),
    (SEC_DOC_PARENTS, 4),
    (SEC_DOC_POSTS, 4),
    (SEC_DOC_LEVELS, 4),
    (SEC_DOC_CHILD_OFFSETS, 4),
    (SEC_DOC_CHILD_LIST, 4),
    (SEC_DOC_BY_LABEL_OFFSETS, 4),
    (SEC_DOC_BY_LABEL_LIST, 4),
    (SEC_DOC_TEXT_SPANS, 8),
    (SEC_DOC_TEXT_BUF, 1),
    (SEC_DOC_ATTR_OFFSETS, 4),
    (SEC_DOC_ATTR_SPANS, 16),
    (SEC_DOC_ATTR_BUF, 1),
];

const V3_SECTION_COUNT: usize = V3_LAYOUT.len();
const V3_TABLE_END: usize = V3_HEADER_LEN + V3_ENTRY_LEN * V3_SECTION_COUNT;

const XXH_P1: u64 = 0x9E37_79B1_85EB_CA87;
const XXH_P2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const XXH_P3: u64 = 0x1656_67B1_9E37_79F9;
const XXH_P4: u64 = 0x85EB_CA77_C2B2_AE63;
const XXH_P5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn xxh_round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(XXH_P2))
        .rotate_left(31)
        .wrapping_mul(XXH_P1)
}

#[inline]
fn xxh_merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ xxh_round(0, val))
        .wrapping_mul(XXH_P1)
        .wrapping_add(XXH_P4)
}

/// Incremental XXH64 state, so the v3 decoder can fold a section into
/// the checksum in cache-sized chunks *while copying it* — one pass over
/// memory instead of a hash pass followed by a copy pass.
struct Xxh64 {
    v: [u64; 4],
    seed: u64,
    /// Bytes consumed by `update` (always a multiple of 32).
    len: u64,
}

impl Xxh64 {
    fn new(seed: u64) -> Xxh64 {
        Xxh64 {
            v: [
                seed.wrapping_add(XXH_P1).wrapping_add(XXH_P2),
                seed.wrapping_add(XXH_P2),
                seed,
                seed.wrapping_sub(XXH_P1),
            ],
            seed,
            len: 0,
        }
    }

    /// Folds `block` (length a multiple of 32) into the accumulators.
    fn update(&mut self, block: &[u8]) {
        debug_assert_eq!(block.len() % 32, 0);
        let [mut v1, mut v2, mut v3, mut v4] = self.v;
        let u64_at = |b: &[u8]| u64::from_le_bytes(b[..8].try_into().expect("8 bytes"));
        for stripe in block.chunks_exact(32) {
            v1 = xxh_round(v1, u64_at(&stripe[0..]));
            v2 = xxh_round(v2, u64_at(&stripe[8..]));
            v3 = xxh_round(v3, u64_at(&stripe[16..]));
            v4 = xxh_round(v4, u64_at(&stripe[24..]));
        }
        self.v = [v1, v2, v3, v4];
        self.len += block.len() as u64;
    }

    /// Consumes the final partial stripe (`tail.len() < 32`) and
    /// finalizes. Matches the one-shot reference digest bit-for-bit.
    fn finish(self, tail: &[u8]) -> u64 {
        debug_assert!(tail.len() < 32);
        let [v1, v2, v3, v4] = self.v;
        let mut h = if self.len > 0 {
            let mut h = v1
                .rotate_left(1)
                .wrapping_add(v2.rotate_left(7))
                .wrapping_add(v3.rotate_left(12))
                .wrapping_add(v4.rotate_left(18));
            h = xxh_merge_round(h, v1);
            h = xxh_merge_round(h, v2);
            h = xxh_merge_round(h, v3);
            xxh_merge_round(h, v4)
        } else {
            self.seed.wrapping_add(XXH_P5)
        };
        h = h.wrapping_add(self.len + tail.len() as u64);
        let mut rest = tail;
        let u64_at = |b: &[u8]| u64::from_le_bytes(b[..8].try_into().expect("8 bytes"));
        while rest.len() >= 8 {
            h = (h ^ xxh_round(0, u64_at(rest)))
                .rotate_left(27)
                .wrapping_mul(XXH_P1)
                .wrapping_add(XXH_P4);
            rest = &rest[8..];
        }
        if rest.len() >= 4 {
            let v = u64::from(u32::from_le_bytes(rest[..4].try_into().expect("4 bytes")));
            h = (h ^ v.wrapping_mul(XXH_P1))
                .rotate_left(23)
                .wrapping_mul(XXH_P2)
                .wrapping_add(XXH_P3);
            rest = &rest[4..];
        }
        for &b in rest {
            h = (h ^ u64::from(b).wrapping_mul(XXH_P5))
                .rotate_left(11)
                .wrapping_mul(XXH_P1);
        }
        h ^= h >> 33;
        h = h.wrapping_mul(XXH_P2);
        h ^= h >> 29;
        h = h.wrapping_mul(XXH_P3);
        h ^ (h >> 32)
    }
}

/// XXH64 (seed-parameterized xxHash, 64-bit variant) over `bytes`.
///
/// Self-contained so the workspace stays dependency-free; exposed `pub`
/// so corruption tests can forge section tables whose checksums verify
/// (the only way to reach the deeper typed errors).
pub fn xxh64(bytes: &[u8], seed: u64) -> u64 {
    let body = bytes.len() & !31;
    let mut state = Xxh64::new(seed);
    state.update(&bytes[..body]);
    state.finish(&bytes[body..])
}

/// Streams `sec` once: every cache-sized chunk is folded into the
/// running XXH64 *and* handed to `emit` while still hot in L1/L2, then
/// the digest is compared against the section-table checksum. `emit`
/// always receives slices whose length is a multiple of 32 except for
/// the final sub-stripe tail, so any element width that divides 32
/// never sees a torn element. Output built from a section that turns
/// out corrupt is simply dropped by the caller via `?`.
fn verify_while_copying(
    sec: &[u8],
    expected: u64,
    mut emit: impl FnMut(&[u8]),
) -> Result<(), DecodeError> {
    const CHUNK: usize = 32 * 1024;
    let body = sec.len() & !31;
    let mut state = Xxh64::new(0);
    for chunk in sec[..body].chunks(CHUNK) {
        state.update(chunk);
        emit(chunk);
    }
    let tail = &sec[body..];
    if state.finish(tail) != expected {
        return Err(DecodeError::BadChecksum);
    }
    emit(tail);
    Ok(())
}

#[inline]
fn align_up(n: usize) -> usize {
    n.div_ceil(SECTION_ALIGN) * SECTION_ALIGN
}

/// Appends a `u32` column as its little-endian wire bytes in one shot.
fn put_u32s(out: &mut Vec<u8>, vals: &[u32]) {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: `u32` has no padding bytes and byte alignment suffices
        // for `u8`; on little-endian the in-memory bytes of an
        // initialized &[u32] are exactly the wire encoding.
        let raw = unsafe { std::slice::from_raw_parts(vals.as_ptr().cast::<u8>(), vals.len() * 4) };
        out.extend_from_slice(raw);
    }
    #[cfg(target_endian = "big")]
    for &v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Appends an `f64` column as its little-endian IEEE-754 bit patterns.
fn put_f64s(out: &mut Vec<u8>, vals: &[f64]) {
    #[cfg(target_endian = "little")]
    {
        // SAFETY: as in `put_u32s` — `f64` has no padding and its LE
        // in-memory bytes equal `to_bits().to_le_bytes()`.
        let raw = unsafe { std::slice::from_raw_parts(vals.as_ptr().cast::<u8>(), vals.len() * 8) };
        out.extend_from_slice(raw);
    }
    #[cfg(target_endian = "big")]
    for &v in vals {
        out.extend_from_slice(&v.to_le_bits_bytes());
    }
}

/// Appends schema-id pairs as `(s, t)` little-endian `u32`s. Written
/// per element: Rust does not guarantee tuple memory layout, and the
/// wire field order must be deterministic.
fn put_id_pairs(out: &mut Vec<u8>, pairs: &[(SchemaNodeId, SchemaNodeId)]) {
    for &(s, t) in pairs {
        out.extend_from_slice(&s.0.to_le_bytes());
        out.extend_from_slice(&t.0.to_le_bytes());
    }
}

/// Appends `(u32, u32)` spans per element (see [`put_id_pairs`]).
fn put_u32_pairs(out: &mut Vec<u8>, spans: &[(u32, u32)]) {
    for &(a, b) in spans {
        out.extend_from_slice(&a.to_le_bytes());
        out.extend_from_slice(&b.to_le_bytes());
    }
}

/// Appends attribute `(name span, value span)` records as four `u32`s.
#[allow(clippy::type_complexity)]
fn put_spans2(out: &mut Vec<u8>, spans: &[((u32, u32), (u32, u32))]) {
    for &((a, b), (c, d)) in spans {
        for v in [a, b, c, d] {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Incremental v3 container writer: reserves the header + section table
/// up front, pads each section to [`SECTION_ALIGN`], and backpatches the
/// table (with per-section and whole-table checksums) on `finish`.
struct V3Writer {
    out: Vec<u8>,
    table: Vec<[u64; 6]>,
}

impl V3Writer {
    fn new() -> V3Writer {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC_SNAPSHOT);
        out.push(SNAPSHOT_VERSION as u8); // single-byte varint
        out.extend_from_slice(&[0, 0, 0]); // pad to 8
        out.resize(V3_TABLE_END, 0); // header + table, backpatched later
        V3Writer {
            out,
            table: Vec::with_capacity(V3_SECTION_COUNT),
        }
    }

    /// Writes one section: aligns, runs `fill` to append the content,
    /// and records the table entry (including the content checksum).
    fn section(&mut self, kind: u64, elem_size: u64, count: u64, fill: impl FnOnce(&mut Vec<u8>)) {
        self.out.resize(align_up(self.out.len()), 0);
        let offset = self.out.len();
        fill(&mut self.out);
        let len = (self.out.len() - offset) as u64;
        debug_assert_eq!(len, count * elem_size, "section {kind} length drifted");
        let checksum = xxh64(&self.out[offset..], 0);
        self.table
            .push([kind, offset as u64, len, count, elem_size, checksum]);
    }

    fn finish(mut self) -> Vec<u8> {
        debug_assert_eq!(self.table.len(), V3_SECTION_COUNT);
        let mut table_bytes = Vec::with_capacity(V3_ENTRY_LEN * self.table.len());
        for entry in &self.table {
            for v in entry {
                table_bytes.extend_from_slice(&v.to_le_bytes());
            }
        }
        let file_len = self.out.len() as u64;
        self.out[8..16].copy_from_slice(&file_len.to_le_bytes());
        self.out[16..24].copy_from_slice(&(self.table.len() as u64).to_le_bytes());
        self.out[24..32].copy_from_slice(&xxh64(&table_bytes, 0).to_le_bytes());
        self.out[V3_HEADER_LEN..V3_TABLE_END].copy_from_slice(&table_bytes);
        self.out
    }
}

/// The version-3 snapshot writer: every resident arena column becomes
/// one page-aligned fixed-width section (see the module docs). Encoding
/// is `extend_from_slice` per column — no varints, no per-element work
/// outside the small `META` section.
fn encode_engine_snapshot_v3(engine: &QueryEngine) -> Vec<u8> {
    let pm = engine.mappings();
    let tree = engine.tree();
    let cols = engine.document().raw_columns();

    // META: schemas, min_support, and the document label table — the
    // only varint-encoded bytes in a v3 file.
    let mut meta = Vec::new();
    put_schema(&mut meta, engine.source());
    put_schema(&mut meta, engine.target());
    put_varint(&mut meta, tree.min_support as u64);
    put_varint(&mut meta, cols.label_names.len() as u64);
    for name in cols.label_names {
        put_str(&mut meta, name);
    }

    // Block-tree CSR columns, flattened from the resident block list.
    let blocks = tree.blocks();
    let mut anchors = Vec::with_capacity(blocks.len());
    let mut corr_offsets = Vec::with_capacity(blocks.len() + 1);
    let mut corrs: Vec<(SchemaNodeId, SchemaNodeId)> = Vec::new();
    let mut map_offsets = Vec::with_capacity(blocks.len() + 1);
    let mut map_ids: Vec<u32> = Vec::new();
    corr_offsets.push(0u32);
    map_offsets.push(0u32);
    for b in blocks {
        anchors.push(b.anchor.0);
        corrs.extend_from_slice(&b.corrs);
        corr_offsets.push(corrs.len() as u32);
        map_ids.extend(b.mappings.iter().map(|m| m.0));
        map_offsets.push(map_ids.len() as u32);
    }

    let mut w = V3Writer::new();
    let n_m = pm.len() as u64;
    w.section(SEC_META, 1, meta.len() as u64, |o| {
        o.extend_from_slice(&meta)
    });
    w.section(SEC_MAP_SCORES, 8, n_m, |o| put_f64s(o, pm.scores()));
    w.section(SEC_MAP_PROBS, 8, n_m, |o| put_f64s(o, pm.probabilities()));
    w.section(SEC_MAP_PAIR_OFFSETS, 4, n_m + 1, |o| {
        put_u32s(o, pm.pair_offsets())
    });
    w.section(SEC_MAP_PAIRS, 8, pm.total_pairs() as u64, |o| {
        put_id_pairs(o, pm.pairs_flat())
    });
    w.section(SEC_BLK_ANCHORS, 4, anchors.len() as u64, |o| {
        put_u32s(o, &anchors)
    });
    w.section(SEC_BLK_CORR_OFFSETS, 4, corr_offsets.len() as u64, |o| {
        put_u32s(o, &corr_offsets)
    });
    w.section(SEC_BLK_CORRS, 8, corrs.len() as u64, |o| {
        put_id_pairs(o, &corrs)
    });
    w.section(SEC_BLK_MAP_OFFSETS, 4, map_offsets.len() as u64, |o| {
        put_u32s(o, &map_offsets)
    });
    w.section(SEC_BLK_MAP_IDS, 4, map_ids.len() as u64, |o| {
        put_u32s(o, &map_ids)
    });
    let n = cols.labels.len() as u64;
    w.section(SEC_DOC_LABELS, 4, n, |o| put_u32s(o, cols.labels));
    w.section(SEC_DOC_PARENTS, 4, n, |o| put_u32s(o, cols.parents));
    w.section(SEC_DOC_POSTS, 4, n, |o| put_u32s(o, cols.posts));
    w.section(SEC_DOC_LEVELS, 4, n, |o| put_u32s(o, cols.levels));
    w.section(SEC_DOC_CHILD_OFFSETS, 4, n + 1, |o| {
        put_u32s(o, cols.child_offsets)
    });
    w.section(SEC_DOC_CHILD_LIST, 4, n - 1, |o| {
        put_u32s(o, cols.child_list)
    });
    w.section(
        SEC_DOC_BY_LABEL_OFFSETS,
        4,
        cols.by_label_offsets.len() as u64,
        |o| put_u32s(o, cols.by_label_offsets),
    );
    w.section(SEC_DOC_BY_LABEL_LIST, 4, n, |o| {
        put_u32s(o, cols.by_label_list)
    });
    w.section(SEC_DOC_TEXT_SPANS, 8, n, |o| {
        put_u32_pairs(o, cols.text_spans)
    });
    w.section(SEC_DOC_TEXT_BUF, 1, cols.text_buf.len() as u64, |o| {
        o.extend_from_slice(cols.text_buf.as_bytes())
    });
    w.section(SEC_DOC_ATTR_OFFSETS, 4, n + 1, |o| {
        put_u32s(o, cols.attr_offsets)
    });
    w.section(SEC_DOC_ATTR_SPANS, 16, cols.attr_spans.len() as u64, |o| {
        put_spans2(o, cols.attr_spans)
    });
    w.section(SEC_DOC_ATTR_BUF, 1, cols.attr_buf.len() as u64, |o| {
        o.extend_from_slice(cols.attr_buf.as_bytes())
    });
    w.finish()
}

/// Appends a little-endian `u32` run to `out` (any multiple-of-4
/// length). On little-endian targets this is one memcpy: the wire bytes
/// are already the in-memory representation.
fn extend_u32s(out: &mut Vec<u32>, chunk: &[u8]) {
    #[cfg(target_endian = "little")]
    {
        let n = chunk.len() / 4;
        let old = out.len();
        out.reserve(n);
        // SAFETY: the spare capacity holds exactly `chunk.len()` bytes,
        // the ranges cannot overlap (Vec spare capacity vs. a borrowed
        // section), and any bit pattern is a valid `u32`.
        unsafe {
            std::ptr::copy_nonoverlapping(
                chunk.as_ptr(),
                out.as_mut_ptr().add(old).cast::<u8>(),
                chunk.len(),
            );
            out.set_len(old + n);
        }
    }
    #[cfg(not(target_endian = "little"))]
    out.extend(
        chunk
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes"))),
    );
}

/// Appends a little-endian `f64` run to `out` (any multiple-of-8 length).
fn extend_f64s(out: &mut Vec<f64>, chunk: &[u8]) {
    #[cfg(target_endian = "little")]
    {
        let n = chunk.len() / 8;
        let old = out.len();
        out.reserve(n);
        // SAFETY: as in `extend_u32s`; any bit pattern is a valid `f64`.
        unsafe {
            std::ptr::copy_nonoverlapping(
                chunk.as_ptr(),
                out.as_mut_ptr().add(old).cast::<u8>(),
                chunk.len(),
            );
            out.set_len(old + n);
        }
    }
    #[cfg(not(target_endian = "little"))]
    out.extend(
        chunk
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("8 bytes")))),
    );
}

/// Reads a `u32` column, verifying the section checksum in the same
/// pass as the copy.
fn read_u32s(sec: &[u8], sum: u64) -> Result<Vec<u32>, DecodeError> {
    let mut out = Vec::with_capacity(sec.len() / 4);
    verify_while_copying(sec, sum, |c| extend_u32s(&mut out, c))?;
    Ok(out)
}

/// Reads an `f64` column, verifying the section checksum in the same
/// pass as the copy.
fn read_f64s(sec: &[u8], sum: u64) -> Result<Vec<f64>, DecodeError> {
    let mut out = Vec::with_capacity(sec.len() / 8);
    verify_while_copying(sec, sum, |c| extend_f64s(&mut out, c))?;
    Ok(out)
}

/// Reads a schema-id pair column, checksummed in the same pass. Tuple
/// layout is not guaranteed, so each element is rebuilt from one `u64`
/// load — a shift-split LLVM vectorizes — instead of a bulk copy; the
/// chunk is L1-hot from the checksum fold so the split is compute-only.
fn read_id_pairs(sec: &[u8], sum: u64) -> Result<Vec<(SchemaNodeId, SchemaNodeId)>, DecodeError> {
    let mut out = Vec::with_capacity(sec.len() / 8);
    verify_while_copying(sec, sum, |chunk| {
        out.extend(chunk.chunks_exact(8).map(|c| {
            let v = u64::from_le_bytes(c.try_into().expect("8 bytes"));
            (SchemaNodeId(v as u32), SchemaNodeId((v >> 32) as u32))
        }))
    })?;
    Ok(out)
}

/// Reads a `(u32, u32)` span column, checksummed in the same pass.
fn read_u32_pairs(sec: &[u8], sum: u64) -> Result<Vec<(u32, u32)>, DecodeError> {
    let mut out = Vec::with_capacity(sec.len() / 8);
    verify_while_copying(sec, sum, |chunk| {
        out.extend(chunk.chunks_exact(8).map(|c| {
            let v = u64::from_le_bytes(c.try_into().expect("8 bytes"));
            (v as u32, (v >> 32) as u32)
        }))
    })?;
    Ok(out)
}

/// Reads an attribute span column, checksummed in the same pass.
#[allow(clippy::type_complexity)]
fn read_spans2(sec: &[u8], sum: u64) -> Result<Vec<((u32, u32), (u32, u32))>, DecodeError> {
    let mut out = Vec::with_capacity(sec.len() / 16);
    verify_while_copying(sec, sum, |chunk| {
        out.extend(chunk.chunks_exact(16).map(|c| {
            let lo = u64::from_le_bytes(c[..8].try_into().expect("8 bytes"));
            let hi = u64::from_le_bytes(c[8..].try_into().expect("8 bytes"));
            (
                (lo as u32, (lo >> 32) as u32),
                (hi as u32, (hi >> 32) as u32),
            )
        }))
    })?;
    Ok(out)
}

/// Reads a string-buffer section, checksummed in the same pass as the
/// copy (so the bytes are only traversed once before UTF-8 validation).
fn read_string(sec: &[u8], sum: u64) -> Result<String, DecodeError> {
    let mut out = Vec::with_capacity(sec.len());
    verify_while_copying(sec, sum, |c| out.extend_from_slice(c))?;
    String::from_utf8(out).map_err(|_| DecodeError::BadString)
}

/// The version-3 decoder: O(sections) header work, then one bulk copy
/// per column into the zero-recompute constructors.
fn decode_engine_snapshot_v3(bytes: &[u8]) -> Result<EngineSnapshot, DecodeError> {
    // Prelude: the caller verified magic + version; canonical files zero
    // the three pad bytes.
    if bytes.len() < V3_TABLE_END {
        return Err(DecodeError::Truncated);
    }
    if bytes[5..8] != [0, 0, 0] {
        return Err(DecodeError::Malformed);
    }
    let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"));
    // `file_len` pins the exact size up front, so truncation and trailing
    // garbage are caught before any section is trusted.
    if u64_at(8) != bytes.len() as u64 {
        return Err(DecodeError::Truncated);
    }
    if u64_at(16) != V3_SECTION_COUNT as u64 {
        return Err(DecodeError::Malformed);
    }
    let table_bytes = &bytes[V3_HEADER_LEN..V3_TABLE_END];
    if xxh64(table_bytes, 0) != u64_at(24) {
        return Err(DecodeError::BadChecksum);
    }

    // Validate every table entry: canonical kind order, page alignment,
    // in-bounds extent, count × elem_size == len (so a hostile count can
    // never drive an allocation past the actual file size). Section
    // *content* checksums are deferred to the reads below: each section
    // is checksummed in the same cache-sized chunks as its bulk copy
    // (`verify_while_copying`), so its bytes are traversed once, not
    // hashed in an upfront sweep and then read all over again. Every
    // section is consumed exactly once, so no checksum goes unverified.
    let mut sections: Vec<(&[u8], u64)> = Vec::with_capacity(V3_SECTION_COUNT);
    for (i, &(kind, elem_size)) in V3_LAYOUT.iter().enumerate() {
        let e = V3_HEADER_LEN + i * V3_ENTRY_LEN;
        let entry_u64 = |j: usize| u64_at(e + 8 * j);
        if entry_u64(0) != kind || entry_u64(4) != elem_size {
            return Err(DecodeError::Malformed);
        }
        let offset = entry_u64(1) as usize;
        let len = entry_u64(2) as usize;
        let count = entry_u64(3);
        if !offset.is_multiple_of(SECTION_ALIGN) || offset < SECTION_ALIGN {
            return Err(DecodeError::Misaligned);
        }
        let end = offset.checked_add(len).ok_or(DecodeError::Truncated)?;
        if end > bytes.len() {
            return Err(DecodeError::Truncated);
        }
        if count.checked_mul(elem_size) != Some(len as u64) {
            return Err(DecodeError::Malformed);
        }
        sections.push((&bytes[offset..end], entry_u64(5)));
    }
    let sec = |kind: u64| sections[kind as usize - 1];
    // META is the one section read through `Reader` (varint-packed), so
    // it is verified whole before parsing.
    let meta = {
        let (meta, sum) = sec(SEC_META);
        if xxh64(meta, 0) != sum {
            return Err(DecodeError::BadChecksum);
        }
        meta
    };

    // META: schemas, min_support, label table (varint-packed).
    let mut r = Reader::new(meta);
    let source = r.schema()?;
    let target = r.schema()?;
    let min_support = r.varint()? as usize;
    let n_labels = r.varint()? as usize;
    let mut label_names = Vec::with_capacity(n_labels.min(4096));
    for _ in 0..n_labels {
        label_names.push(r.str()?.to_string());
    }
    r.finish()?;

    // Mapping columns, bulk-copied; deep validation (CSR shape, id
    // bounds, per-run sort order) lives in `from_raw_columns`.
    let scores = {
        let (sec, sum) = sec(SEC_MAP_SCORES);
        read_f64s(sec, sum)?
    };
    let probs = {
        let (sec, sum) = sec(SEC_MAP_PROBS);
        read_f64s(sec, sum)?
    };
    if probs.len() != scores.len() {
        return Err(DecodeError::Malformed);
    }
    let pair_offsets = {
        let (sec, sum) = sec(SEC_MAP_PAIR_OFFSETS);
        read_u32s(sec, sum)?
    };
    let pairs = {
        let (sec, sum) = sec(SEC_MAP_PAIRS);
        read_id_pairs(sec, sum)?
    };

    // Block-tree CSR columns.
    let anchors = {
        let (sec, sum) = sec(SEC_BLK_ANCHORS);
        read_u32s(sec, sum)?
    };
    let corr_offsets = {
        let (sec, sum) = sec(SEC_BLK_CORR_OFFSETS);
        read_u32s(sec, sum)?
    };
    let corrs = {
        let (sec, sum) = sec(SEC_BLK_CORRS);
        read_id_pairs(sec, sum)?
    };
    let map_offsets = {
        let (sec, sum) = sec(SEC_BLK_MAP_OFFSETS);
        read_u32s(sec, sum)?
    };
    let map_ids = {
        let (sec, sum) = sec(SEC_BLK_MAP_IDS);
        read_u32s(sec, sum)?
    };
    let tree = BlockTree::from_raw_columns(
        &target,
        &anchors,
        &corr_offsets,
        &corrs,
        &map_offsets,
        &map_ids,
        source.len(),
        scores.len(),
        min_support,
    )
    .ok_or(DecodeError::Malformed)?;
    let mappings =
        PossibleMappings::from_raw_columns(source, target, scores, probs, pair_offsets, pairs)
            .ok_or(DecodeError::Malformed)?;

    // Document columns, straight into the zero-recompute constructor.
    let text_buf = {
        let (sec, sum) = sec(SEC_DOC_TEXT_BUF);
        read_string(sec, sum)?
    };
    let attr_buf = {
        let (sec, sum) = sec(SEC_DOC_ATTR_BUF);
        read_string(sec, sum)?
    };
    let labels = {
        let (sec, sum) = sec(SEC_DOC_LABELS);
        read_u32s(sec, sum)?
    };
    let parents = {
        let (sec, sum) = sec(SEC_DOC_PARENTS);
        read_u32s(sec, sum)?
    };
    let posts = {
        let (sec, sum) = sec(SEC_DOC_POSTS);
        read_u32s(sec, sum)?
    };
    let levels = {
        let (sec, sum) = sec(SEC_DOC_LEVELS);
        read_u32s(sec, sum)?
    };
    let child_offsets = {
        let (sec, sum) = sec(SEC_DOC_CHILD_OFFSETS);
        read_u32s(sec, sum)?
    };
    let child_list = {
        let (sec, sum) = sec(SEC_DOC_CHILD_LIST);
        read_u32s(sec, sum)?
    };
    let text_spans = {
        let (sec, sum) = sec(SEC_DOC_TEXT_SPANS);
        read_u32_pairs(sec, sum)?
    };
    let attr_offsets = {
        let (sec, sum) = sec(SEC_DOC_ATTR_OFFSETS);
        read_u32s(sec, sum)?
    };
    let attr_spans = {
        let (sec, sum) = sec(SEC_DOC_ATTR_SPANS);
        read_spans2(sec, sum)?
    };
    let by_label_offsets = {
        let (sec, sum) = sec(SEC_DOC_BY_LABEL_OFFSETS);
        read_u32s(sec, sum)?
    };
    let by_label_list = {
        let (sec, sum) = sec(SEC_DOC_BY_LABEL_LIST);
        read_u32s(sec, sum)?
    };
    let cols = uxm_xml::document::DocumentColumns {
        label_names,
        labels,
        parents,
        posts,
        levels,
        child_offsets,
        child_list,
        text_buf,
        text_spans,
        attr_buf,
        attr_offsets,
        attr_spans,
        by_label_offsets,
        by_label_list,
    };
    let document = Document::from_raw_columns(cols).map_err(column_error)?;

    Ok(EngineSnapshot {
        mappings,
        tree,
        document,
    })
}

/// Shared `ColumnError` → `DecodeError` mapping for the columnar
/// document constructors.
fn column_error(e: ColumnError) -> DecodeError {
    match e {
        ColumnError::BadParent => DecodeError::Malformed,
        ColumnError::BadLabel => DecodeError::IdOutOfRange,
        ColumnError::BadSpan => DecodeError::BadString,
        ColumnError::BadIndex => DecodeError::Malformed,
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_schema(out: &mut Vec<u8>, schema: &Schema) {
    put_str(out, &schema.name);
    put_varint(out, schema.len() as u64);
    for id in schema.ids() {
        put_str(out, schema.label(id));
        if let Some(p) = schema.parent(id) {
            put_varint(out, p.0 as u64);
        }
        out.push(schema.node(id).repeatable as u8);
    }
}

/// The shared block encoding (anchor, corrs, mapping ids) used by both
/// the standalone "UXM1" codec and the v2 snapshot's mapping section.
fn put_blocks(out: &mut Vec<u8>, blocks: &[Block]) {
    put_varint(out, blocks.len() as u64);
    for b in blocks {
        put_varint(out, b.anchor.0 as u64);
        put_varint(out, b.corrs.len() as u64);
        for &(s, t) in &b.corrs {
            put_varint(out, s.0 as u64);
            put_varint(out, t.0 as u64);
        }
        put_varint(out, b.mappings.len() as u64);
        for &m in &b.mappings {
            put_varint(out, m.0 as u64);
        }
    }
}

/// The v2 columnar document section: label table, label/parent columns,
/// sparse text spans with one contiguous text buffer, flat attribute
/// spans with one contiguous attribute buffer.
fn put_document_columnar(out: &mut Vec<u8>, doc: &Document) {
    put_varint(out, doc.label_count() as u64);
    for l in 0..doc.label_count() as u32 {
        put_str(out, doc.label_name(uxm_xml::LabelId(l)));
    }
    put_varint(out, doc.len() as u64);
    for id in doc.ids() {
        put_varint(out, doc.label(id).0 as u64);
    }
    for id in doc.ids().skip(1) {
        put_varint(out, doc.parent(id).expect("non-root has a parent").0 as u64);
    }
    // Sparse text spans in node order, then the concatenated bytes.
    let with_text: Vec<DocNodeId> = doc.ids().filter(|&n| doc.text(n).is_some()).collect();
    put_varint(out, with_text.len() as u64);
    for &n in &with_text {
        put_varint(out, n.0 as u64);
        put_varint(out, doc.text(n).expect("filtered").len() as u64);
    }
    for &n in &with_text {
        out.extend_from_slice(doc.text(n).expect("filtered").as_bytes());
    }
    // Flat attribute spans in node order, then the concatenated bytes.
    let total_attrs: usize = doc.ids().map(|n| doc.attr_count(n)).sum();
    put_varint(out, total_attrs as u64);
    for n in doc.ids() {
        for (name, value) in doc.attrs(n) {
            put_varint(out, n.0 as u64);
            put_varint(out, name.len() as u64);
            put_varint(out, value.len() as u64);
        }
    }
    for n in doc.ids() {
        for (name, value) in doc.attrs(n) {
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(value.as_bytes());
        }
    }
}

fn put_document(out: &mut Vec<u8>, doc: &Document) {
    put_varint(out, doc.label_count() as u64);
    for l in 0..doc.label_count() as u32 {
        put_str(out, doc.label_name(uxm_xml::LabelId(l)));
    }
    put_varint(out, doc.len() as u64);
    for id in doc.ids() {
        put_varint(out, doc.label(id).0 as u64);
        if let Some(p) = doc.parent(id) {
            put_varint(out, p.0 as u64);
        }
        match doc.text(id) {
            Some(t) => {
                out.push(1);
                put_str(out, t);
            }
            None => out.push(0),
        }
        put_varint(out, doc.attr_count(id) as u64);
        for (name, value) in doc.attrs(id) {
            put_str(out, name);
            put_str(out, value);
        }
    }
}

// ---------------------------------------------------------------------
// varint plumbing

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

trait F64Bytes {
    fn to_le_bits_bytes(self) -> [u8; 8];
}

impl F64Bytes for f64 {
    fn to_le_bits_bytes(self) -> [u8; 8] {
        self.to_bits().to_le_bytes()
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn expect_magic(&mut self, magic: &[u8; 4]) -> Result<(), DecodeError> {
        if self.bytes.len() < 4 {
            return Err(DecodeError::Truncated);
        }
        if &self.bytes[..4] != magic {
            return Err(DecodeError::BadMagic);
        }
        self.pos = 4;
        Ok(())
    }

    fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut v = 0u64;
        let mut shift = 0;
        loop {
            let byte = *self.bytes.get(self.pos).ok_or(DecodeError::Truncated)?;
            self.pos += 1;
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return Err(DecodeError::Truncated);
            }
        }
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        let end = self.pos + 8;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(DecodeError::Truncated)?;
        self.pos = end;
        Ok(f64::from_bits(u64::from_le_bytes(
            slice.try_into().expect("8 bytes"),
        )))
    }

    fn pairs(
        &mut self,
        n_source: usize,
        n_target: usize,
    ) -> Result<Vec<(SchemaNodeId, SchemaNodeId)>, DecodeError> {
        let n = self.varint()? as usize;
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let s = self.varint()? as u32;
            let t = self.varint()? as u32;
            if s as usize >= n_source || t as usize >= n_target {
                return Err(DecodeError::IdOutOfRange);
            }
            out.push((SchemaNodeId(s), SchemaNodeId(t)));
        }
        Ok(out)
    }

    /// Consumes the next `n` raw bytes.
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(DecodeError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn str(&mut self) -> Result<&'a str, DecodeError> {
        let len = self.varint()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| DecodeError::BadString)
    }

    /// A schema stored by `put_schema`: pre-order nodes, parent preceding
    /// child.
    fn schema(&mut self) -> Result<Schema, DecodeError> {
        let name = self.str()?.to_string();
        let n = self.varint()? as usize;
        if n == 0 {
            return Err(DecodeError::Malformed);
        }
        let root_label = self.str()?.to_string();
        let mut schema = Schema::new(name, root_label);
        let root_rep = self.take(1)?[0] != 0;
        schema.set_repeatable(SchemaNodeId(0), root_rep);
        for id in 1..n {
            let label = self.str()?.to_string();
            let parent = self.varint()? as usize;
            if parent >= id {
                return Err(DecodeError::Malformed);
            }
            let repeatable = self.take(1)?[0] != 0;
            schema.add_child_full(SchemaNodeId(parent as u32), label, repeatable);
        }
        Ok(schema)
    }

    /// A document stored by `put_document`: nodes in document order,
    /// parent preceding child (the builder's append contract).
    fn document(&mut self) -> Result<Document, DecodeError> {
        let n_labels = self.varint()? as usize;
        let mut labels = Vec::with_capacity(n_labels.min(4096));
        for _ in 0..n_labels {
            labels.push(self.str()?.to_string());
        }
        let n = self.varint()? as usize;
        if n == 0 {
            return Err(DecodeError::Malformed);
        }
        let mut builder: Option<uxm_xml::document::DocumentBuilder> = None;
        for id in 0..n {
            let label = labels
                .get(self.varint()? as usize)
                .ok_or(DecodeError::IdOutOfRange)?;
            let node = match (&mut builder, id) {
                (slot @ None, 0) => {
                    *slot = Some(Document::builder(label));
                    DocNodeId(0)
                }
                (Some(b), _) => {
                    let parent = self.varint()? as usize;
                    if parent >= id {
                        return Err(DecodeError::Malformed);
                    }
                    b.add_child(DocNodeId(parent as u32), label)
                }
                (None, _) => unreachable!("builder set on id 0"),
            };
            let b = builder.as_mut().expect("builder initialized");
            if self.take(1)?[0] != 0 {
                let text = self.str()?.to_string();
                b.set_text(node, text);
            }
            let n_attrs = self.varint()? as usize;
            for _ in 0..n_attrs {
                let name = self.str()?.to_string();
                let value = self.str()?.to_string();
                b.add_attr(node, name, value);
            }
        }
        Ok(builder.expect("at least the root").finish())
    }

    /// A varint that must fit in a `u32` (column offsets and lengths).
    fn varint_u32(&mut self) -> Result<u32, DecodeError> {
        let v = self.varint()?;
        u32::try_from(v).map_err(|_| DecodeError::Malformed)
    }

    /// The v2 mapping section: shared blocks, then columnar score /
    /// probability columns and per-mapping block pointers + residuals,
    /// reconstructed straight into the columnar [`PossibleMappings`].
    fn columnar_mappings(
        &mut self,
        source: Schema,
        target: Schema,
    ) -> Result<(PossibleMappings, BlockTree), DecodeError> {
        let min_support = self.varint()? as usize;
        let n_blocks = self.varint()? as usize;
        let mut blocks = Vec::with_capacity(n_blocks.min(4096));
        for _ in 0..n_blocks {
            let anchor = self.varint_u32()?;
            if anchor as usize >= target.len() {
                return Err(DecodeError::IdOutOfRange);
            }
            let corrs = self.pairs(source.len(), target.len())?;
            let n_m = self.varint()? as usize;
            let mut mappings = Vec::with_capacity(n_m.min(4096));
            for _ in 0..n_m {
                mappings.push(MappingId(self.varint_u32()?));
            }
            blocks.push(Block {
                anchor: SchemaNodeId(anchor),
                corrs,
                mappings,
            });
        }
        let tree = BlockTree::from_blocks(&target, blocks, min_support);

        let n = self.varint()? as usize;
        let mut scores = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            scores.push(self.f64()?);
        }
        let mut probs = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            probs.push(self.f64()?);
        }
        let mut pair_offsets = Vec::with_capacity(n + 1);
        pair_offsets.push(0u32);
        let mut pairs: Vec<(SchemaNodeId, SchemaNodeId)> = Vec::new();
        let mut row: Vec<(SchemaNodeId, SchemaNodeId)> = Vec::new();
        for _ in 0..n {
            row.clear();
            let n_b = self.varint()? as usize;
            for _ in 0..n_b {
                let b = self.varint()? as usize;
                let block = tree.blocks().get(b).ok_or(DecodeError::IdOutOfRange)?;
                row.extend_from_slice(&block.corrs);
            }
            row.extend(self.pairs(source.len(), target.len())?);
            row.sort_by_key(|&(s, t)| (t, s));
            row.dedup();
            pairs.extend_from_slice(&row);
            let end = u32::try_from(pairs.len()).map_err(|_| DecodeError::Malformed)?;
            pair_offsets.push(end);
        }
        let pm = PossibleMappings::from_columns(source, target, scores, probs, pair_offsets, pairs)
            .ok_or(DecodeError::Malformed)?;
        Ok((pm, tree))
    }

    /// The v2 columnar document section, decoded straight into
    /// [`Document::from_columns`] — no per-node `String` allocation and
    /// no incremental builder.
    fn document_columnar(&mut self) -> Result<Document, DecodeError> {
        let n_labels = self.varint()? as usize;
        let mut label_names = Vec::with_capacity(n_labels.min(4096));
        for _ in 0..n_labels {
            label_names.push(self.str()?.to_string());
        }
        let n = self.varint()? as usize;
        if n == 0 {
            return Err(DecodeError::Malformed);
        }
        let cap = n.min(1 << 20);
        let mut labels = Vec::with_capacity(cap);
        for _ in 0..n {
            labels.push(LabelId(self.varint_u32()?));
        }
        let mut parents = Vec::with_capacity(cap);
        parents.push(Document::NO_PARENT);
        for _ in 1..n {
            parents.push(self.varint_u32()?);
        }

        // Sparse text spans: (node, byte len) with strictly increasing
        // nodes, then the one contiguous buffer.
        let n_text = self.varint()? as usize;
        let mut text_entries = Vec::with_capacity(n_text.min(cap));
        let mut total_text = 0usize;
        let mut last: Option<u32> = None;
        for _ in 0..n_text {
            let node = self.varint_u32()?;
            let len = self.varint_u32()?;
            if node as usize >= n {
                return Err(DecodeError::IdOutOfRange);
            }
            if last.is_some_and(|l| node <= l) {
                return Err(DecodeError::Malformed);
            }
            last = Some(node);
            text_entries.push((node, len));
            total_text += len as usize;
        }
        let text_buf = std::str::from_utf8(self.take(total_text)?)
            .map_err(|_| DecodeError::BadString)?
            .to_string();
        let mut text_spans = vec![(Document::NO_PARENT, 0u32); n];
        let mut off = 0u32;
        for &(node, len) in &text_entries {
            text_spans[node as usize] = (off, len);
            off += len;
        }

        // Flat attribute spans: (node, name len, value len) with
        // non-decreasing nodes, then the one contiguous buffer.
        let n_attrs = self.varint()? as usize;
        let mut attr_counts = vec![0u32; n];
        let mut attr_lens = Vec::with_capacity(n_attrs.min(cap));
        let mut total_attr = 0usize;
        let mut last_node: Option<u32> = None;
        for _ in 0..n_attrs {
            let node = self.varint_u32()?;
            if node as usize >= n {
                return Err(DecodeError::IdOutOfRange);
            }
            if last_node.is_some_and(|l| node < l) {
                return Err(DecodeError::Malformed);
            }
            last_node = Some(node);
            let name_len = self.varint_u32()?;
            let value_len = self.varint_u32()?;
            attr_counts[node as usize] += 1;
            total_attr += name_len as usize + value_len as usize;
            attr_lens.push((name_len, value_len));
        }
        let attr_buf = std::str::from_utf8(self.take(total_attr)?)
            .map_err(|_| DecodeError::BadString)?
            .to_string();
        let mut attr_spans = Vec::with_capacity(attr_lens.len());
        let mut off = 0u32;
        for &(name_len, value_len) in &attr_lens {
            attr_spans.push(((off, name_len), (off + name_len, value_len)));
            off += name_len + value_len;
        }

        Document::from_columns(
            label_names,
            labels,
            parents,
            text_buf,
            text_spans,
            attr_buf,
            attr_counts,
            attr_spans,
        )
        .map_err(column_error)
    }

    fn finish(&self) -> Result<(), DecodeError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(DecodeError::Truncated)
        }
    }
}

/// A minimal, libc-free `mmap(2)` wrapper for reading snapshot files
/// without copying them through a heap buffer first.
///
/// v3 snapshots are page-aligned precisely so a mapping exposes every
/// column at its natural alignment; the registry's hydration path uses
/// this module (instead of `std::fs::read`) when the `mmap` feature is
/// enabled. Raw `syscall`/`svc` instructions keep the workspace free of
/// a libc binding dependency.
#[cfg(all(
    feature = "mmap",
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub mod mmap {
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    /// A read-only, private memory mapping of an entire file, unmapped
    /// on drop. Derefs to `&[u8]`.
    pub struct Mmap {
        ptr: *const u8,
        len: usize,
    }

    // SAFETY: the mapping is read-only (PROT_READ, MAP_PRIVATE), owned
    // exclusively by this value, and unmapped only in Drop — shared
    // references to its bytes are sound from any thread.
    unsafe impl Send for Mmap {}
    // SAFETY: as above — no interior mutability, reads only.
    unsafe impl Sync for Mmap {}

    impl Mmap {
        /// Maps `file` read-only in its entirety. A zero-length file
        /// yields an empty mapping without a syscall (the kernel rejects
        /// `mmap` with length 0).
        pub fn map(file: &File) -> io::Result<Mmap> {
            let len = file.metadata()?.len();
            let len = usize::try_from(len)
                .map_err(|_| io::Error::new(io::ErrorKind::OutOfMemory, "file exceeds usize"))?;
            if len == 0 {
                return Ok(Mmap {
                    ptr: std::ptr::NonNull::<u8>::dangling().as_ptr(),
                    len: 0,
                });
            }
            let fd = file.as_raw_fd();
            // SAFETY: all arguments are well-formed (len > 0, live fd);
            // a PROT_READ | MAP_PRIVATE mapping of a file we own a
            // handle to cannot alias any Rust-managed memory.
            let ret = unsafe { sys_mmap(0, len, PROT_READ, MAP_PRIVATE, fd as usize, 0) };
            // Raw syscalls report errors as -errno in [-4095, -1].
            if ret > usize::MAX - 4095 {
                return Err(io::Error::from_raw_os_error(ret.wrapping_neg() as i32));
            }
            Ok(Mmap {
                ptr: ret as *const u8,
                len,
            })
        }

        /// Length of the mapping in bytes.
        pub fn len(&self) -> usize {
            self.len
        }

        /// True for a zero-length mapping.
        pub fn is_empty(&self) -> bool {
            self.len == 0
        }
    }

    impl std::ops::Deref for Mmap {
        type Target = [u8];

        fn deref(&self) -> &[u8] {
            // SAFETY: `ptr`/`len` denote a live PROT_READ mapping made
            // in `map` (or a dangling-but-valid empty slice), unmapped
            // only when `self` drops.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for Mmap {
        fn drop(&mut self) {
            if self.len != 0 {
                // SAFETY: unmaps exactly the region `map` created; the
                // pointer is never used again.
                unsafe {
                    sys_munmap(self.ptr as usize, self.len);
                }
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn sys_mmap(
        addr: usize,
        len: usize,
        prot: usize,
        flags: usize,
        fd: usize,
        off: usize,
    ) -> usize {
        let ret: usize;
        // SAFETY: caller upholds the mmap(2) contract; rcx/r11 are
        // clobbered by `syscall` and declared as such.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 9usize => ret, // __NR_mmap
                in("rdi") addr,
                in("rsi") len,
                in("rdx") prot,
                in("r10") flags,
                in("r8") fd,
                in("r9") off,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "x86_64")]
    unsafe fn sys_munmap(addr: usize, len: usize) -> usize {
        let ret: usize;
        // SAFETY: caller passes a region previously returned by mmap.
        unsafe {
            std::arch::asm!(
                "syscall",
                inlateout("rax") 11usize => ret, // __NR_munmap
                in("rdi") addr,
                in("rsi") len,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn sys_mmap(
        addr: usize,
        len: usize,
        prot: usize,
        flags: usize,
        fd: usize,
        off: usize,
    ) -> usize {
        let ret: usize;
        // SAFETY: caller upholds the mmap(2) contract.
        unsafe {
            std::arch::asm!(
                "svc 0",
                inlateout("x0") addr => ret,
                in("x1") len,
                in("x2") prot,
                in("x3") flags,
                in("x4") fd,
                in("x5") off,
                in("x8") 222usize, // __NR_mmap
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn sys_munmap(addr: usize, len: usize) -> usize {
        let ret: usize;
        // SAFETY: caller passes a region previously returned by mmap.
        unsafe {
            std::arch::asm!(
                "svc 0",
                inlateout("x0") addr => ret,
                in("x1") len,
                in("x8") 215usize, // __NR_munmap
                options(nostack),
            );
        }
        ret
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::io::Write;

        #[test]
        fn maps_whole_file() {
            let dir = std::env::temp_dir().join("uxm-mmap-test");
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join(format!("probe-{}.bin", std::process::id()));
            let payload: Vec<u8> = (0..10_000u32).flat_map(|v| v.to_le_bytes()).collect();
            std::fs::File::create(&path)
                .unwrap()
                .write_all(&payload)
                .unwrap();
            let file = std::fs::File::open(&path).unwrap();
            let map = Mmap::map(&file).unwrap();
            assert_eq!(&*map, &payload[..]);
            assert_eq!(map.len(), payload.len());
            drop(map);
            std::fs::remove_file(&path).unwrap();
        }

        #[test]
        fn empty_file_maps_empty() {
            let dir = std::env::temp_dir().join("uxm-mmap-test");
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join(format!("empty-{}.bin", std::process::id()));
            std::fs::File::create(&path).unwrap();
            let file = std::fs::File::open(&path).unwrap();
            let map = Mmap::map(&file).unwrap();
            assert!(map.is_empty());
            std::fs::remove_file(&path).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_tree::BlockTreeConfig;
    use uxm_matching::Matcher;

    fn workload() -> (PossibleMappings, BlockTree) {
        let source = Schema::parse_outline(
            "Order(Buyer(Name Contact(EMail)) POLine(LineNo Quantity UnitPrice))",
        )
        .unwrap();
        let target =
            Schema::parse_outline("PO(Purchaser(PName PContact(PEMail)) Line(No Qty Amount))")
                .unwrap();
        let matching = Matcher::context().match_schemas(&source, &target);
        let pm = PossibleMappings::top_h(&matching, 24);
        let tree = BlockTree::build(&target, &pm, &BlockTreeConfig::default());
        (pm, tree)
    }

    fn assert_same_mappings(a: &PossibleMappings, b: &PossibleMappings) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.1, y.1);
        }
    }

    #[test]
    fn plain_roundtrip() {
        let (pm, _) = workload();
        let bytes = encode_plain(&pm);
        let back = decode_plain(&bytes, pm.source.clone(), pm.target.clone()).unwrap();
        assert_same_mappings(&pm, &back);
    }

    #[test]
    fn compressed_roundtrip_restores_mappings_and_tree() {
        let (pm, tree) = workload();
        let bytes = encode_compressed(&pm, &tree);
        let (back, back_tree) =
            decode_compressed(&bytes, pm.source.clone(), pm.target.clone()).unwrap();
        assert_same_mappings(&pm, &back);
        assert_eq!(tree.blocks(), back_tree.blocks());
        assert_eq!(tree.min_support, back_tree.min_support);
        // rebuilt index answers lookups
        for b in tree.blocks() {
            assert!(back_tree.has_blocks(b.anchor));
        }
    }

    #[test]
    fn compressed_is_smaller_on_overlapping_sets() {
        // A heavily-overlapping set (the regime the paper targets): a
        // shared 9-element subtree across 60 mappings varying in one leaf.
        let source = Schema::parse_outline("O(A0 A1 A2 A3 A4 A5 A6 A7 A8 B1 B2)").unwrap();
        let target = Schema::parse_outline("R(X(C1 C2 C3 C4 C5 C6 C7 C8) Y)").unwrap();
        let s = |l: &str| source.nodes_with_label(l)[0];
        let t = |l: &str| target.nodes_with_label(l)[0];
        let mut shared = vec![(s("A0"), t("X"))];
        for i in 1..=8 {
            shared.push((s(&format!("A{i}")), t(&format!("C{i}"))));
        }
        let sets = (0..60)
            .map(|i| {
                let mut pairs = shared.clone();
                pairs.push((s(if i % 2 == 0 { "B1" } else { "B2" }), t("Y")));
                (pairs, 1.0 + i as f64 * 0.01)
            })
            .collect();
        let pm = PossibleMappings::from_pairs(source, target.clone(), sets);
        let tree = BlockTree::build(&target, &pm, &BlockTreeConfig::default());
        let ratio = measured_compression_ratio(&pm, &tree);
        assert!(
            ratio > 0.1,
            "expected on-disk savings, got ratio {ratio:.3} \
             (plain {} vs compressed {})",
            encode_plain(&pm).len(),
            encode_compressed(&pm, &tree).len()
        );
    }

    #[test]
    fn detects_bad_magic() {
        let (pm, tree) = workload();
        let plain = encode_plain(&pm);
        assert_eq!(
            decode_compressed(&plain, pm.source.clone(), pm.target.clone()).unwrap_err(),
            DecodeError::BadMagic
        );
        let compressed = encode_compressed(&pm, &tree);
        assert_eq!(
            decode_plain(&compressed, pm.source.clone(), pm.target.clone()).unwrap_err(),
            DecodeError::BadMagic
        );
    }

    #[test]
    fn detects_truncation() {
        let (pm, _) = workload();
        let bytes = encode_plain(&pm);
        for cut in [3, bytes.len() / 2, bytes.len() - 1] {
            let err =
                decode_plain(&bytes[..cut], pm.source.clone(), pm.target.clone()).unwrap_err();
            assert_eq!(err, DecodeError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn detects_out_of_range_ids() {
        let (pm, _) = workload();
        let bytes = encode_plain(&pm);
        // shrink the target schema so stored ids overflow it
        let tiny = Schema::parse_outline("X").unwrap();
        let err = decode_plain(&bytes, pm.source.clone(), tiny).unwrap_err();
        assert_eq!(err, DecodeError::IdOutOfRange);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let (pm, _) = workload();
        let mut bytes = encode_plain(&pm);
        bytes.push(0xFF);
        let err = decode_plain(&bytes, pm.source.clone(), pm.target.clone()).unwrap_err();
        assert_eq!(err, DecodeError::Truncated);
    }

    #[test]
    fn snapshot_roundtrip_preserves_queries() {
        use uxm_twig::TwigPattern;
        use uxm_xml::DocGenConfig;

        let (pm, tree) = workload();
        let mut doc = {
            let mut b = Document::builder("Order");
            let root = b.root();
            let line = b.add_child(root, "POLine");
            let qty = b.add_child(line, "Quantity");
            b.set_text(qty, "3");
            b.add_attr(line, "id", "L1");
            b.finish()
        };
        // Also exercise a generated (larger) document.
        for generated in [false, true] {
            if generated {
                doc = Document::generate(&pm.source, &DocGenConfig::small(), 5);
            }
            let engine = QueryEngine::new(pm.clone(), doc.clone(), tree.clone());
            let bytes = encode_engine_snapshot(&engine);
            let back = decode_engine_snapshot(&bytes).unwrap();
            assert_eq!(back.source(), engine.source());
            assert_eq!(back.target(), engine.target());
            assert_same_mappings(back.mappings(), engine.mappings());
            assert_eq!(back.tree().blocks(), engine.tree().blocks());
            assert_eq!(back.document().len(), engine.document().len());
            for qs in ["PO//Qty", "PO/Line", "//Amount"] {
                let query = crate::api::Query::ptq(TwigPattern::parse(qs).unwrap());
                assert_eq!(
                    back.run(&query).unwrap().answers,
                    engine.run(&query).unwrap().answers,
                    "{qs}"
                );
            }
        }
    }

    #[test]
    fn snapshot_preserves_text_and_attrs() {
        let (pm, tree) = workload();
        let doc = {
            let mut b = Document::builder("Order");
            let root = b.root();
            let n = b.add_child(root, "Item");
            b.set_text(n, "héllo — utf8 ✓");
            b.add_attr(n, "currency", "EUR");
            b.add_attr(n, "unit", "kg");
            b.finish()
        };
        let engine = QueryEngine::new(pm, doc, tree);
        let back = decode_engine_snapshot(&encode_engine_snapshot(&engine)).unwrap();
        let item = back.document().nodes_with_label("Item")[0];
        assert_eq!(back.document().text(item), Some("héllo — utf8 ✓"));
        assert_eq!(back.document().attr(item, "currency"), Some("EUR"));
        assert_eq!(back.document().attr(item, "unit"), Some("kg"));
    }

    #[test]
    fn snapshot_rejects_unsupported_version() {
        let (pm, tree) = workload();
        let doc = Document::builder("Order").finish();
        let mut bytes = encode_engine_snapshot(&QueryEngine::new(pm, doc, tree));
        bytes[4] = 99; // version varint lives right after the magic
        assert_eq!(
            decode_engine_snapshot(&bytes).unwrap_err(),
            DecodeError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn snapshot_rejects_bad_strings_and_malformed_trees() {
        // Hand-craft a (v2-body) snapshot whose source schema name is
        // invalid UTF-8 — v2 is the newest version whose body starts
        // with an inline schema, so these stay pinned to version 2.
        let mut bad_string = Vec::new();
        bad_string.extend_from_slice(MAGIC_SNAPSHOT);
        put_varint(&mut bad_string, 2);
        put_varint(&mut bad_string, 2); // name length...
        bad_string.extend_from_slice(&[0xFF, 0xFE]); // ...invalid bytes
        assert_eq!(
            decode_engine_snapshot(&bad_string).unwrap_err(),
            DecodeError::BadString
        );

        // A schema node whose parent does not precede it.
        let mut bad_parent = Vec::new();
        bad_parent.extend_from_slice(MAGIC_SNAPSHOT);
        put_varint(&mut bad_parent, 2);
        put_str(&mut bad_parent, "s");
        put_varint(&mut bad_parent, 2); // two nodes
        put_str(&mut bad_parent, "Root");
        bad_parent.push(0);
        put_str(&mut bad_parent, "Child");
        put_varint(&mut bad_parent, 5); // parent id 5 >= node id 1
        bad_parent.push(0);
        assert_eq!(
            decode_engine_snapshot(&bad_parent).unwrap_err(),
            DecodeError::Malformed
        );

        // An empty node table.
        let mut empty = Vec::new();
        empty.extend_from_slice(MAGIC_SNAPSHOT);
        put_varint(&mut empty, 2);
        put_str(&mut empty, "s");
        put_varint(&mut empty, 0); // zero schema nodes
        assert_eq!(
            decode_engine_snapshot(&empty).unwrap_err(),
            DecodeError::Malformed
        );
    }

    #[test]
    fn snapshot_truncation_and_magic() {
        let (pm, tree) = workload();
        let doc = Document::builder("Order").finish();
        let bytes = encode_engine_snapshot(&QueryEngine::new(pm, doc, tree));
        assert_eq!(
            decode_engine_snapshot(&bytes[..bytes.len() - 1]).unwrap_err(),
            DecodeError::Truncated
        );
        assert_eq!(
            decode_engine_snapshot(b"UXM0whatever").unwrap_err(),
            DecodeError::BadMagic
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            decode_engine_snapshot(&trailing).unwrap_err(),
            DecodeError::Truncated
        );
    }

    #[test]
    fn xxh64_reference_vectors() {
        // Published XXH64 test vectors (seed 0).
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"abc", 0), 0x44BC_2CF5_AD77_0999);
        assert_eq!(
            xxh64(b"The quick brown fox jumps over the lazy dog", 0),
            0x0B24_2D36_1FDA_71BC
        );
        // Seed participates.
        assert_ne!(xxh64(b"abc", 0), xxh64(b"abc", 1));
    }

    #[test]
    fn v3_container_framing() {
        let (pm, tree) = workload();
        let doc = {
            let mut b = Document::builder("Order");
            let root = b.root();
            let n = b.add_child(root, "POLine");
            b.set_text(n, "x");
            b.finish()
        };
        let bytes = encode_engine_snapshot(&QueryEngine::new(pm, doc, tree));
        assert_eq!(&bytes[..4], MAGIC_SNAPSHOT);
        assert_eq!(bytes[4], 3);
        assert_eq!(&bytes[5..8], &[0, 0, 0]);
        assert_eq!(snapshot_version(&bytes).unwrap(), SNAPSHOT_VERSION);
        let u64_at =
            |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"));
        assert_eq!(u64_at(8), bytes.len() as u64, "file_len");
        assert_eq!(u64_at(16), V3_SECTION_COUNT as u64, "section_count");
        for (i, &(kind, _)) in V3_LAYOUT.iter().enumerate() {
            let e = V3_HEADER_LEN + i * V3_ENTRY_LEN;
            assert_eq!(u64_at(e), kind, "kind order");
            let offset = u64_at(e + 8) as usize;
            assert_eq!(offset % SECTION_ALIGN, 0, "section {i} aligned");
            assert!(offset >= SECTION_ALIGN);
        }
        // Canonical re-encode is byte-identical: every column is stored
        // verbatim, so decode → encode must be a fixed point.
        let parts = decode_engine_snapshot_parts(&bytes).unwrap();
        let engine = QueryEngine::new(parts.mappings, parts.document, parts.tree);
        assert_eq!(encode_engine_snapshot(&engine), bytes);
    }

    #[test]
    fn v3_corruption_is_typed() {
        let (pm, tree) = workload();
        let doc = Document::builder("Order").finish();
        let bytes = encode_engine_snapshot(&QueryEngine::new(pm, doc, tree));
        // Flip one byte inside the section table: table checksum.
        let mut t = bytes.clone();
        t[V3_HEADER_LEN + 8] ^= 1;
        assert_eq!(
            decode_engine_snapshot(&t).unwrap_err(),
            DecodeError::BadChecksum
        );
        // Flip one content byte in the first section: section checksum.
        let mut c = bytes.clone();
        c[SECTION_ALIGN] ^= 1;
        assert_eq!(
            decode_engine_snapshot(&c).unwrap_err(),
            DecodeError::BadChecksum
        );
        // Non-zero prelude padding is rejected as malformed.
        let mut p = bytes.clone();
        p[6] = 1;
        assert_eq!(
            decode_engine_snapshot(&p).unwrap_err(),
            DecodeError::Malformed
        );
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint().unwrap(), v);
            assert!(r.finish().is_ok());
        }
    }
}
