//! Binary storage for mapping sets and whole engine sessions.
//!
//! The paper's compression ratio (§VI-2) is a storage metric; this module
//! makes it concrete: a mapping set can be serialized *verbatim*
//! ([`encode_plain`]) or *through its block tree* ([`encode_compressed`]):
//! blocks are stored once, and each mapping stores block pointers plus
//! residual correspondences (the output of
//! [`crate::compress::compress`]). Both decode back to an identical
//! [`PossibleMappings`].
//!
//! On top of the mapping codecs sits the **engine snapshot**
//! ([`encode_engine_snapshot`] / [`decode_engine_snapshot`]): one
//! versioned container holding everything a [`QueryEngine`] session owns —
//! both schemas, the block-compressed mapping set, and the source
//! document — so a [`crate::registry::EngineRegistry`] can hydrate a
//! serving engine from a single file with no out-of-band state.
//!
//! # Snapshot format (version 2, current)
//!
//! Version 2 serializes the **columnar layout directly** — the same
//! structure-of-arrays form the engine holds resident — so hydration
//! builds no per-node `String`s and no intermediate tree (see
//! `docs/wire-format.md` for the byte-level grammar):
//!
//! ```text
//! magic  "UXMS"
//! varint  version            — 2
//! schema  source             — name, then nodes in pre-order:
//!                              label, parent id (omitted for the root),
//!                              repeatable flag
//! schema  target
//! varint  min_support; blocks — anchor, corrs, mapping ids (as "UXM1")
//! varint  |M|; scores ×|M| (f64), probs ×|M| (f64)
//! per mapping: block pointers, then residual pairs
//! doc     label table; node count; label column; parent column;
//!         sparse text spans (node, byte len) + one contiguous text
//!         buffer; flat attribute spans (node, name len, value len) +
//!         one contiguous attribute buffer
//! ```
//!
//! **Version history** (`SNAPSHOT_VERSION`):
//!
//! * **1** — initial format: schemas, a length-prefixed embedded
//!   `encode_compressed` payload, then the document with per-node
//!   text/attribute records. Still decoded (see
//!   [`decode_engine_snapshot`]); [`encode_engine_snapshot_v1`] keeps
//!   the writer alive for compatibility fixtures.
//! * **2** — columnar document and mapping sections as above: smaller
//!   files (no per-node flag bytes or length-prefixed strings) and
//!   faster hydration (the decoder feeds `Document::from_columns` /
//!   `PossibleMappings::from_columns` directly). Decoders reject any
//!   other version with [`DecodeError::UnsupportedVersion`], so stale
//!   snapshot files fail loudly instead of misparsing.
//!
//! All formats use LEB128 varints for ids and counts, so the on-disk
//! sizes reflect genuine entropy, not padding.
//!
//! # Examples
//!
//! A snapshot round trip preserves answers exactly (the per-dataset
//! byte-level guarantee lives in `tests/snapshot_roundtrip.rs`):
//!
//! ```
//! use uxm_core::api::Query;
//! use uxm_core::block_tree::BlockTreeConfig;
//! use uxm_core::engine::QueryEngine;
//! use uxm_core::mapping::PossibleMappings;
//! use uxm_core::storage::{decode_engine_snapshot, encode_engine_snapshot};
//! use uxm_matching::Matcher;
//! use uxm_twig::TwigPattern;
//! use uxm_xml::{DocGenConfig, Document, Schema};
//!
//! let source = Schema::parse_outline("Order(Buyer(Name) Item(Price))").unwrap();
//! let target = Schema::parse_outline("PO(Vendor(ContactName) Line(UnitPrice))").unwrap();
//! let matching = Matcher::default().match_schemas(&source, &target);
//! let pm = PossibleMappings::top_h(&matching, 8);
//! let doc = Document::generate(&source, &DocGenConfig::small(), 7);
//! let engine = QueryEngine::build(pm, doc, &BlockTreeConfig::default());
//!
//! // One self-contained artifact: schemas + compressed mappings + document.
//! let bytes = encode_engine_snapshot(&engine);
//! let restored = decode_engine_snapshot(&bytes).unwrap();
//!
//! let q = Query::ptq(TwigPattern::parse("PO//ContactName").unwrap());
//! assert_eq!(
//!     engine.run(&q).unwrap().answers,
//!     restored.run(&q).unwrap().answers,
//! );
//! ```

use crate::block::Block;
use crate::block_tree::BlockTree;
use crate::compress::compress;
use crate::engine::QueryEngine;
use crate::mapping::{Mapping, MappingId, PossibleMappings};
use std::fmt;
use uxm_xml::{ColumnError, DocNodeId, Document, LabelId, Schema, SchemaNodeId};

const MAGIC_PLAIN: &[u8; 4] = b"UXM0";
const MAGIC_BLOCK: &[u8; 4] = b"UXM1";
const MAGIC_SNAPSHOT: &[u8; 4] = b"UXMS";

/// Current engine-snapshot format version (see the module docs for the
/// version history). Encoders write this version; decoders accept it
/// **and** still read version-1 files.
pub const SNAPSHOT_VERSION: u64 = 2;

/// Decode failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// Wrong magic bytes or format mismatch.
    BadMagic,
    /// Input ended mid-value.
    Truncated,
    /// A stored id exceeds the schema / block table bounds.
    IdOutOfRange,
    /// A snapshot written by an unknown (newer or corrupted) format
    /// version; the value is the version the file claims.
    UnsupportedVersion(u64),
    /// A stored string is not valid UTF-8.
    BadString,
    /// Structurally impossible data: an empty node table, or a node whose
    /// parent does not precede it in pre-order.
    Malformed,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad magic / wrong format"),
            DecodeError::Truncated => write!(f, "truncated input"),
            DecodeError::IdOutOfRange => write!(f, "stored id out of range"),
            DecodeError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (expected {SNAPSHOT_VERSION})"
                )
            }
            DecodeError::BadString => write!(f, "stored string is not valid UTF-8"),
            DecodeError::Malformed => write!(f, "structurally malformed input"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Serializes the mapping set verbatim.
pub fn encode_plain(pm: &PossibleMappings) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC_PLAIN);
    put_varint(&mut out, pm.len() as u64);
    for (_, m) in pm.iter() {
        out.extend_from_slice(&m.score.to_le_bits_bytes());
        out.extend_from_slice(&m.prob.to_le_bits_bytes());
        put_varint(&mut out, m.pairs.len() as u64);
        for &(s, t) in m.pairs {
            put_varint(&mut out, s.0 as u64);
            put_varint(&mut out, t.0 as u64);
        }
    }
    out
}

/// Deserializes a verbatim mapping set (schemas travel out of band — they
/// are part of the matching, not the mapping set).
pub fn decode_plain(
    bytes: &[u8],
    source: Schema,
    target: Schema,
) -> Result<PossibleMappings, DecodeError> {
    let mut r = Reader::new(bytes);
    r.expect_magic(MAGIC_PLAIN)?;
    let n = r.varint()? as usize;
    let mut mappings = Vec::with_capacity(n);
    for _ in 0..n {
        let score = r.f64()?;
        let prob = r.f64()?;
        let pairs = r.pairs(source.len(), target.len())?;
        mappings.push(Mapping { pairs, score, prob });
    }
    r.finish()?;
    Ok(PossibleMappings::from_parts(source, target, mappings))
}

/// Serializes the mapping set through its block tree: blocks once,
/// then per mapping (score, prob, block pointers, residual pairs).
pub fn encode_compressed(pm: &PossibleMappings, tree: &BlockTree) -> Vec<u8> {
    let cm = compress(pm, tree);
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC_BLOCK);
    put_varint(&mut out, tree.min_support as u64);
    put_blocks(&mut out, tree.blocks());
    put_varint(&mut out, pm.len() as u64);
    for (mid, m) in pm.iter() {
        let c = &cm.mappings[mid.idx()];
        out.extend_from_slice(&m.score.to_le_bits_bytes());
        out.extend_from_slice(&m.prob.to_le_bits_bytes());
        put_varint(&mut out, c.blocks.len() as u64);
        for &b in &c.blocks {
            put_varint(&mut out, b.0 as u64);
        }
        put_varint(&mut out, c.residual.len() as u64);
        for &(s, t) in &c.residual {
            put_varint(&mut out, s.0 as u64);
            put_varint(&mut out, t.0 as u64);
        }
    }
    out
}

/// Deserializes a block-compressed mapping set, reconstructing both the
/// block tree and the full mappings.
pub fn decode_compressed(
    bytes: &[u8],
    source: Schema,
    target: Schema,
) -> Result<(PossibleMappings, BlockTree), DecodeError> {
    let mut r = Reader::new(bytes);
    r.expect_magic(MAGIC_BLOCK)?;
    let min_support = r.varint()? as usize;
    let n_blocks = r.varint()? as usize;
    let mut blocks = Vec::with_capacity(n_blocks);
    for _ in 0..n_blocks {
        let anchor = r.varint()? as u32;
        if anchor as usize >= target.len() {
            return Err(DecodeError::IdOutOfRange);
        }
        let corrs = r.pairs(source.len(), target.len())?;
        let n_m = r.varint()? as usize;
        let mut mappings = Vec::with_capacity(n_m);
        for _ in 0..n_m {
            mappings.push(MappingId(r.varint()? as u32));
        }
        blocks.push(Block {
            anchor: SchemaNodeId(anchor),
            corrs,
            mappings,
        });
    }
    let tree = BlockTree::from_blocks(&target, blocks, min_support);

    let n = r.varint()? as usize;
    let mut mappings = Vec::with_capacity(n);
    for _ in 0..n {
        let score = r.f64()?;
        let prob = r.f64()?;
        let n_b = r.varint()? as usize;
        let mut pairs: Vec<(SchemaNodeId, SchemaNodeId)> = Vec::new();
        for _ in 0..n_b {
            let b = r.varint()? as usize;
            let block = tree.blocks().get(b).ok_or(DecodeError::IdOutOfRange)?;
            pairs.extend_from_slice(&block.corrs);
        }
        pairs.extend(r.pairs(source.len(), target.len())?);
        pairs.sort_by_key(|&(s, t)| (t, s));
        pairs.dedup();
        mappings.push(Mapping { pairs, score, prob });
    }
    r.finish()?;
    Ok((PossibleMappings::from_parts(source, target, mappings), tree))
}

/// Measured on-disk compression ratio: `1 - compressed / plain`.
pub fn measured_compression_ratio(pm: &PossibleMappings, tree: &BlockTree) -> f64 {
    let plain = encode_plain(pm).len() as f64;
    let compressed = encode_compressed(pm, tree).len() as f64;
    1.0 - compressed / plain
}

// ---------------------------------------------------------------------
// engine snapshots

/// Serializes a whole engine session — schemas, block-compressed mapping
/// set, and document — into one versioned container in the current
/// (columnar, version-2) layout. See the module docs for the layout and
/// [`encode_engine_snapshot_v1`] for the legacy writer.
pub fn encode_engine_snapshot(engine: &QueryEngine) -> Vec<u8> {
    let pm = engine.mappings();
    let tree = engine.tree();
    let cm = compress(pm, tree);
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC_SNAPSHOT);
    put_varint(&mut out, SNAPSHOT_VERSION);
    put_schema(&mut out, engine.source());
    put_schema(&mut out, engine.target());

    // Mapping section: blocks once, then columnar mapping columns.
    put_varint(&mut out, tree.min_support as u64);
    put_blocks(&mut out, tree.blocks());
    put_varint(&mut out, pm.len() as u64);
    for (_, m) in pm.iter() {
        out.extend_from_slice(&m.score.to_le_bits_bytes());
    }
    for (_, m) in pm.iter() {
        out.extend_from_slice(&m.prob.to_le_bits_bytes());
    }
    for (mid, _) in pm.iter() {
        let c = &cm.mappings[mid.idx()];
        put_varint(&mut out, c.blocks.len() as u64);
        for &b in &c.blocks {
            put_varint(&mut out, b.0 as u64);
        }
        put_varint(&mut out, c.residual.len() as u64);
        for &(s, t) in &c.residual {
            put_varint(&mut out, s.0 as u64);
            put_varint(&mut out, t.0 as u64);
        }
    }

    put_document_columnar(&mut out, engine.document());
    out
}

/// The legacy (version-1) snapshot writer, kept so compatibility tests
/// and fixtures can still produce v1 bytes. New snapshots should use
/// [`encode_engine_snapshot`].
pub fn encode_engine_snapshot_v1(engine: &QueryEngine) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC_SNAPSHOT);
    put_varint(&mut out, 1);
    put_schema(&mut out, engine.source());
    put_schema(&mut out, engine.target());
    let payload = encode_compressed(engine.mappings(), engine.tree());
    put_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    put_document(&mut out, engine.document());
    out
}

/// The decoded parts of an engine snapshot, before session-state
/// construction.
///
/// [`decode_engine_snapshot`] wraps these in [`QueryEngine::new`];
/// callers that only *inspect* a snapshot (e.g. `uxm registry list`) can
/// stop here and skip building symbol tables and relevance bitsets.
pub struct EngineSnapshot {
    /// The mapping set, decompressed through its block tree.
    pub mappings: PossibleMappings,
    /// The reconstructed block tree.
    pub tree: BlockTree,
    /// The source document.
    pub document: Document,
}

/// Peeks the format version of an engine snapshot without decoding its
/// body (`uxm stats` and the compat tooling report it).
pub fn snapshot_version(bytes: &[u8]) -> Result<u64, DecodeError> {
    let mut r = Reader::new(bytes);
    r.expect_magic(MAGIC_SNAPSHOT)?;
    r.varint()
}

/// Deserializes an engine snapshot into its parts, without building any
/// session state.
pub fn decode_engine_snapshot_parts(bytes: &[u8]) -> Result<EngineSnapshot, DecodeError> {
    let mut r = Reader::new(bytes);
    r.expect_magic(MAGIC_SNAPSHOT)?;
    let version = r.varint()?;
    match version {
        1 => {
            let source = r.schema()?;
            let target = r.schema()?;
            let payload_len = r.varint()? as usize;
            let payload = r.take(payload_len)?;
            let (mappings, tree) = decode_compressed(payload, source, target)?;
            let document = r.document()?;
            r.finish()?;
            Ok(EngineSnapshot {
                mappings,
                tree,
                document,
            })
        }
        2 => {
            let source = r.schema()?;
            let target = r.schema()?;
            let (mappings, tree) = r.columnar_mappings(source, target)?;
            let document = r.document_columnar()?;
            r.finish()?;
            Ok(EngineSnapshot {
                mappings,
                tree,
                document,
            })
        }
        other => Err(DecodeError::UnsupportedVersion(other)),
    }
}

/// Deserializes an engine snapshot and rebuilds the full session state
/// (symbol tables, relevance bitsets, caches) from it. The rehydrated
/// engine answers every query identically to the one that was saved.
pub fn decode_engine_snapshot(bytes: &[u8]) -> Result<QueryEngine, DecodeError> {
    let parts = decode_engine_snapshot_parts(bytes)?;
    Ok(QueryEngine::new(parts.mappings, parts.document, parts.tree))
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn put_schema(out: &mut Vec<u8>, schema: &Schema) {
    put_str(out, &schema.name);
    put_varint(out, schema.len() as u64);
    for id in schema.ids() {
        put_str(out, schema.label(id));
        if let Some(p) = schema.parent(id) {
            put_varint(out, p.0 as u64);
        }
        out.push(schema.node(id).repeatable as u8);
    }
}

/// The shared block encoding (anchor, corrs, mapping ids) used by both
/// the standalone "UXM1" codec and the v2 snapshot's mapping section.
fn put_blocks(out: &mut Vec<u8>, blocks: &[Block]) {
    put_varint(out, blocks.len() as u64);
    for b in blocks {
        put_varint(out, b.anchor.0 as u64);
        put_varint(out, b.corrs.len() as u64);
        for &(s, t) in &b.corrs {
            put_varint(out, s.0 as u64);
            put_varint(out, t.0 as u64);
        }
        put_varint(out, b.mappings.len() as u64);
        for &m in &b.mappings {
            put_varint(out, m.0 as u64);
        }
    }
}

/// The v2 columnar document section: label table, label/parent columns,
/// sparse text spans with one contiguous text buffer, flat attribute
/// spans with one contiguous attribute buffer.
fn put_document_columnar(out: &mut Vec<u8>, doc: &Document) {
    put_varint(out, doc.label_count() as u64);
    for l in 0..doc.label_count() as u32 {
        put_str(out, doc.label_name(uxm_xml::LabelId(l)));
    }
    put_varint(out, doc.len() as u64);
    for id in doc.ids() {
        put_varint(out, doc.label(id).0 as u64);
    }
    for id in doc.ids().skip(1) {
        put_varint(out, doc.parent(id).expect("non-root has a parent").0 as u64);
    }
    // Sparse text spans in node order, then the concatenated bytes.
    let with_text: Vec<DocNodeId> = doc.ids().filter(|&n| doc.text(n).is_some()).collect();
    put_varint(out, with_text.len() as u64);
    for &n in &with_text {
        put_varint(out, n.0 as u64);
        put_varint(out, doc.text(n).expect("filtered").len() as u64);
    }
    for &n in &with_text {
        out.extend_from_slice(doc.text(n).expect("filtered").as_bytes());
    }
    // Flat attribute spans in node order, then the concatenated bytes.
    let total_attrs: usize = doc.ids().map(|n| doc.attr_count(n)).sum();
    put_varint(out, total_attrs as u64);
    for n in doc.ids() {
        for (name, value) in doc.attrs(n) {
            put_varint(out, n.0 as u64);
            put_varint(out, name.len() as u64);
            put_varint(out, value.len() as u64);
        }
    }
    for n in doc.ids() {
        for (name, value) in doc.attrs(n) {
            out.extend_from_slice(name.as_bytes());
            out.extend_from_slice(value.as_bytes());
        }
    }
}

fn put_document(out: &mut Vec<u8>, doc: &Document) {
    put_varint(out, doc.label_count() as u64);
    for l in 0..doc.label_count() as u32 {
        put_str(out, doc.label_name(uxm_xml::LabelId(l)));
    }
    put_varint(out, doc.len() as u64);
    for id in doc.ids() {
        put_varint(out, doc.label(id).0 as u64);
        if let Some(p) = doc.parent(id) {
            put_varint(out, p.0 as u64);
        }
        match doc.text(id) {
            Some(t) => {
                out.push(1);
                put_str(out, t);
            }
            None => out.push(0),
        }
        put_varint(out, doc.attr_count(id) as u64);
        for (name, value) in doc.attrs(id) {
            put_str(out, name);
            put_str(out, value);
        }
    }
}

// ---------------------------------------------------------------------
// varint plumbing

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

trait F64Bytes {
    fn to_le_bits_bytes(self) -> [u8; 8];
}

impl F64Bytes for f64 {
    fn to_le_bits_bytes(self) -> [u8; 8] {
        self.to_bits().to_le_bytes()
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn expect_magic(&mut self, magic: &[u8; 4]) -> Result<(), DecodeError> {
        if self.bytes.len() < 4 {
            return Err(DecodeError::Truncated);
        }
        if &self.bytes[..4] != magic {
            return Err(DecodeError::BadMagic);
        }
        self.pos = 4;
        Ok(())
    }

    fn varint(&mut self) -> Result<u64, DecodeError> {
        let mut v = 0u64;
        let mut shift = 0;
        loop {
            let byte = *self.bytes.get(self.pos).ok_or(DecodeError::Truncated)?;
            self.pos += 1;
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return Err(DecodeError::Truncated);
            }
        }
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        let end = self.pos + 8;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(DecodeError::Truncated)?;
        self.pos = end;
        Ok(f64::from_bits(u64::from_le_bytes(
            slice.try_into().expect("8 bytes"),
        )))
    }

    fn pairs(
        &mut self,
        n_source: usize,
        n_target: usize,
    ) -> Result<Vec<(SchemaNodeId, SchemaNodeId)>, DecodeError> {
        let n = self.varint()? as usize;
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            let s = self.varint()? as u32;
            let t = self.varint()? as u32;
            if s as usize >= n_source || t as usize >= n_target {
                return Err(DecodeError::IdOutOfRange);
            }
            out.push((SchemaNodeId(s), SchemaNodeId(t)));
        }
        Ok(out)
    }

    /// Consumes the next `n` raw bytes.
    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(DecodeError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn str(&mut self) -> Result<&'a str, DecodeError> {
        let len = self.varint()? as usize;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|_| DecodeError::BadString)
    }

    /// A schema stored by `put_schema`: pre-order nodes, parent preceding
    /// child.
    fn schema(&mut self) -> Result<Schema, DecodeError> {
        let name = self.str()?.to_string();
        let n = self.varint()? as usize;
        if n == 0 {
            return Err(DecodeError::Malformed);
        }
        let root_label = self.str()?.to_string();
        let mut schema = Schema::new(name, root_label);
        let root_rep = self.take(1)?[0] != 0;
        schema.set_repeatable(SchemaNodeId(0), root_rep);
        for id in 1..n {
            let label = self.str()?.to_string();
            let parent = self.varint()? as usize;
            if parent >= id {
                return Err(DecodeError::Malformed);
            }
            let repeatable = self.take(1)?[0] != 0;
            schema.add_child_full(SchemaNodeId(parent as u32), label, repeatable);
        }
        Ok(schema)
    }

    /// A document stored by `put_document`: nodes in document order,
    /// parent preceding child (the builder's append contract).
    fn document(&mut self) -> Result<Document, DecodeError> {
        let n_labels = self.varint()? as usize;
        let mut labels = Vec::with_capacity(n_labels.min(4096));
        for _ in 0..n_labels {
            labels.push(self.str()?.to_string());
        }
        let n = self.varint()? as usize;
        if n == 0 {
            return Err(DecodeError::Malformed);
        }
        let mut builder: Option<uxm_xml::document::DocumentBuilder> = None;
        for id in 0..n {
            let label = labels
                .get(self.varint()? as usize)
                .ok_or(DecodeError::IdOutOfRange)?;
            let node = match (&mut builder, id) {
                (slot @ None, 0) => {
                    *slot = Some(Document::builder(label));
                    DocNodeId(0)
                }
                (Some(b), _) => {
                    let parent = self.varint()? as usize;
                    if parent >= id {
                        return Err(DecodeError::Malformed);
                    }
                    b.add_child(DocNodeId(parent as u32), label)
                }
                (None, _) => unreachable!("builder set on id 0"),
            };
            let b = builder.as_mut().expect("builder initialized");
            if self.take(1)?[0] != 0 {
                let text = self.str()?.to_string();
                b.set_text(node, text);
            }
            let n_attrs = self.varint()? as usize;
            for _ in 0..n_attrs {
                let name = self.str()?.to_string();
                let value = self.str()?.to_string();
                b.add_attr(node, name, value);
            }
        }
        Ok(builder.expect("at least the root").finish())
    }

    /// A varint that must fit in a `u32` (column offsets and lengths).
    fn varint_u32(&mut self) -> Result<u32, DecodeError> {
        let v = self.varint()?;
        u32::try_from(v).map_err(|_| DecodeError::Malformed)
    }

    /// The v2 mapping section: shared blocks, then columnar score /
    /// probability columns and per-mapping block pointers + residuals,
    /// reconstructed straight into the columnar [`PossibleMappings`].
    fn columnar_mappings(
        &mut self,
        source: Schema,
        target: Schema,
    ) -> Result<(PossibleMappings, BlockTree), DecodeError> {
        let min_support = self.varint()? as usize;
        let n_blocks = self.varint()? as usize;
        let mut blocks = Vec::with_capacity(n_blocks.min(4096));
        for _ in 0..n_blocks {
            let anchor = self.varint_u32()?;
            if anchor as usize >= target.len() {
                return Err(DecodeError::IdOutOfRange);
            }
            let corrs = self.pairs(source.len(), target.len())?;
            let n_m = self.varint()? as usize;
            let mut mappings = Vec::with_capacity(n_m.min(4096));
            for _ in 0..n_m {
                mappings.push(MappingId(self.varint_u32()?));
            }
            blocks.push(Block {
                anchor: SchemaNodeId(anchor),
                corrs,
                mappings,
            });
        }
        let tree = BlockTree::from_blocks(&target, blocks, min_support);

        let n = self.varint()? as usize;
        let mut scores = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            scores.push(self.f64()?);
        }
        let mut probs = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            probs.push(self.f64()?);
        }
        let mut pair_offsets = Vec::with_capacity(n + 1);
        pair_offsets.push(0u32);
        let mut pairs: Vec<(SchemaNodeId, SchemaNodeId)> = Vec::new();
        let mut row: Vec<(SchemaNodeId, SchemaNodeId)> = Vec::new();
        for _ in 0..n {
            row.clear();
            let n_b = self.varint()? as usize;
            for _ in 0..n_b {
                let b = self.varint()? as usize;
                let block = tree.blocks().get(b).ok_or(DecodeError::IdOutOfRange)?;
                row.extend_from_slice(&block.corrs);
            }
            row.extend(self.pairs(source.len(), target.len())?);
            row.sort_by_key(|&(s, t)| (t, s));
            row.dedup();
            pairs.extend_from_slice(&row);
            let end = u32::try_from(pairs.len()).map_err(|_| DecodeError::Malformed)?;
            pair_offsets.push(end);
        }
        let pm = PossibleMappings::from_columns(source, target, scores, probs, pair_offsets, pairs)
            .ok_or(DecodeError::Malformed)?;
        Ok((pm, tree))
    }

    /// The v2 columnar document section, decoded straight into
    /// [`Document::from_columns`] — no per-node `String` allocation and
    /// no incremental builder.
    fn document_columnar(&mut self) -> Result<Document, DecodeError> {
        let n_labels = self.varint()? as usize;
        let mut label_names = Vec::with_capacity(n_labels.min(4096));
        for _ in 0..n_labels {
            label_names.push(self.str()?.to_string());
        }
        let n = self.varint()? as usize;
        if n == 0 {
            return Err(DecodeError::Malformed);
        }
        let cap = n.min(1 << 20);
        let mut labels = Vec::with_capacity(cap);
        for _ in 0..n {
            labels.push(LabelId(self.varint_u32()?));
        }
        let mut parents = Vec::with_capacity(cap);
        parents.push(Document::NO_PARENT);
        for _ in 1..n {
            parents.push(self.varint_u32()?);
        }

        // Sparse text spans: (node, byte len) with strictly increasing
        // nodes, then the one contiguous buffer.
        let n_text = self.varint()? as usize;
        let mut text_entries = Vec::with_capacity(n_text.min(cap));
        let mut total_text = 0usize;
        let mut last: Option<u32> = None;
        for _ in 0..n_text {
            let node = self.varint_u32()?;
            let len = self.varint_u32()?;
            if node as usize >= n {
                return Err(DecodeError::IdOutOfRange);
            }
            if last.is_some_and(|l| node <= l) {
                return Err(DecodeError::Malformed);
            }
            last = Some(node);
            text_entries.push((node, len));
            total_text += len as usize;
        }
        let text_buf = std::str::from_utf8(self.take(total_text)?)
            .map_err(|_| DecodeError::BadString)?
            .to_string();
        let mut text_spans = vec![(Document::NO_PARENT, 0u32); n];
        let mut off = 0u32;
        for &(node, len) in &text_entries {
            text_spans[node as usize] = (off, len);
            off += len;
        }

        // Flat attribute spans: (node, name len, value len) with
        // non-decreasing nodes, then the one contiguous buffer.
        let n_attrs = self.varint()? as usize;
        let mut attr_counts = vec![0u32; n];
        let mut attr_lens = Vec::with_capacity(n_attrs.min(cap));
        let mut total_attr = 0usize;
        let mut last_node: Option<u32> = None;
        for _ in 0..n_attrs {
            let node = self.varint_u32()?;
            if node as usize >= n {
                return Err(DecodeError::IdOutOfRange);
            }
            if last_node.is_some_and(|l| node < l) {
                return Err(DecodeError::Malformed);
            }
            last_node = Some(node);
            let name_len = self.varint_u32()?;
            let value_len = self.varint_u32()?;
            attr_counts[node as usize] += 1;
            total_attr += name_len as usize + value_len as usize;
            attr_lens.push((name_len, value_len));
        }
        let attr_buf = std::str::from_utf8(self.take(total_attr)?)
            .map_err(|_| DecodeError::BadString)?
            .to_string();
        let mut attr_spans = Vec::with_capacity(attr_lens.len());
        let mut off = 0u32;
        for &(name_len, value_len) in &attr_lens {
            attr_spans.push(((off, name_len), (off + name_len, value_len)));
            off += name_len + value_len;
        }

        Document::from_columns(
            label_names,
            labels,
            parents,
            text_buf,
            text_spans,
            attr_buf,
            attr_counts,
            attr_spans,
        )
        .map_err(|e| match e {
            ColumnError::BadParent => DecodeError::Malformed,
            ColumnError::BadLabel => DecodeError::IdOutOfRange,
            ColumnError::BadSpan => DecodeError::BadString,
        })
    }

    fn finish(&self) -> Result<(), DecodeError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(DecodeError::Truncated)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_tree::BlockTreeConfig;
    use uxm_matching::Matcher;

    fn workload() -> (PossibleMappings, BlockTree) {
        let source = Schema::parse_outline(
            "Order(Buyer(Name Contact(EMail)) POLine(LineNo Quantity UnitPrice))",
        )
        .unwrap();
        let target =
            Schema::parse_outline("PO(Purchaser(PName PContact(PEMail)) Line(No Qty Amount))")
                .unwrap();
        let matching = Matcher::context().match_schemas(&source, &target);
        let pm = PossibleMappings::top_h(&matching, 24);
        let tree = BlockTree::build(&target, &pm, &BlockTreeConfig::default());
        (pm, tree)
    }

    fn assert_same_mappings(a: &PossibleMappings, b: &PossibleMappings) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.1, y.1);
        }
    }

    #[test]
    fn plain_roundtrip() {
        let (pm, _) = workload();
        let bytes = encode_plain(&pm);
        let back = decode_plain(&bytes, pm.source.clone(), pm.target.clone()).unwrap();
        assert_same_mappings(&pm, &back);
    }

    #[test]
    fn compressed_roundtrip_restores_mappings_and_tree() {
        let (pm, tree) = workload();
        let bytes = encode_compressed(&pm, &tree);
        let (back, back_tree) =
            decode_compressed(&bytes, pm.source.clone(), pm.target.clone()).unwrap();
        assert_same_mappings(&pm, &back);
        assert_eq!(tree.blocks(), back_tree.blocks());
        assert_eq!(tree.min_support, back_tree.min_support);
        // rebuilt index answers lookups
        for b in tree.blocks() {
            assert!(back_tree.has_blocks(b.anchor));
        }
    }

    #[test]
    fn compressed_is_smaller_on_overlapping_sets() {
        // A heavily-overlapping set (the regime the paper targets): a
        // shared 9-element subtree across 60 mappings varying in one leaf.
        let source = Schema::parse_outline("O(A0 A1 A2 A3 A4 A5 A6 A7 A8 B1 B2)").unwrap();
        let target = Schema::parse_outline("R(X(C1 C2 C3 C4 C5 C6 C7 C8) Y)").unwrap();
        let s = |l: &str| source.nodes_with_label(l)[0];
        let t = |l: &str| target.nodes_with_label(l)[0];
        let mut shared = vec![(s("A0"), t("X"))];
        for i in 1..=8 {
            shared.push((s(&format!("A{i}")), t(&format!("C{i}"))));
        }
        let sets = (0..60)
            .map(|i| {
                let mut pairs = shared.clone();
                pairs.push((s(if i % 2 == 0 { "B1" } else { "B2" }), t("Y")));
                (pairs, 1.0 + i as f64 * 0.01)
            })
            .collect();
        let pm = PossibleMappings::from_pairs(source, target.clone(), sets);
        let tree = BlockTree::build(&target, &pm, &BlockTreeConfig::default());
        let ratio = measured_compression_ratio(&pm, &tree);
        assert!(
            ratio > 0.1,
            "expected on-disk savings, got ratio {ratio:.3} \
             (plain {} vs compressed {})",
            encode_plain(&pm).len(),
            encode_compressed(&pm, &tree).len()
        );
    }

    #[test]
    fn detects_bad_magic() {
        let (pm, tree) = workload();
        let plain = encode_plain(&pm);
        assert_eq!(
            decode_compressed(&plain, pm.source.clone(), pm.target.clone()).unwrap_err(),
            DecodeError::BadMagic
        );
        let compressed = encode_compressed(&pm, &tree);
        assert_eq!(
            decode_plain(&compressed, pm.source.clone(), pm.target.clone()).unwrap_err(),
            DecodeError::BadMagic
        );
    }

    #[test]
    fn detects_truncation() {
        let (pm, _) = workload();
        let bytes = encode_plain(&pm);
        for cut in [3, bytes.len() / 2, bytes.len() - 1] {
            let err =
                decode_plain(&bytes[..cut], pm.source.clone(), pm.target.clone()).unwrap_err();
            assert_eq!(err, DecodeError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn detects_out_of_range_ids() {
        let (pm, _) = workload();
        let bytes = encode_plain(&pm);
        // shrink the target schema so stored ids overflow it
        let tiny = Schema::parse_outline("X").unwrap();
        let err = decode_plain(&bytes, pm.source.clone(), tiny).unwrap_err();
        assert_eq!(err, DecodeError::IdOutOfRange);
    }

    #[test]
    fn trailing_garbage_rejected() {
        let (pm, _) = workload();
        let mut bytes = encode_plain(&pm);
        bytes.push(0xFF);
        let err = decode_plain(&bytes, pm.source.clone(), pm.target.clone()).unwrap_err();
        assert_eq!(err, DecodeError::Truncated);
    }

    #[test]
    fn snapshot_roundtrip_preserves_queries() {
        use uxm_twig::TwigPattern;
        use uxm_xml::DocGenConfig;

        let (pm, tree) = workload();
        let mut doc = {
            let mut b = Document::builder("Order");
            let root = b.root();
            let line = b.add_child(root, "POLine");
            let qty = b.add_child(line, "Quantity");
            b.set_text(qty, "3");
            b.add_attr(line, "id", "L1");
            b.finish()
        };
        // Also exercise a generated (larger) document.
        for generated in [false, true] {
            if generated {
                doc = Document::generate(&pm.source, &DocGenConfig::small(), 5);
            }
            let engine = QueryEngine::new(pm.clone(), doc.clone(), tree.clone());
            let bytes = encode_engine_snapshot(&engine);
            let back = decode_engine_snapshot(&bytes).unwrap();
            assert_eq!(back.source(), engine.source());
            assert_eq!(back.target(), engine.target());
            assert_same_mappings(back.mappings(), engine.mappings());
            assert_eq!(back.tree().blocks(), engine.tree().blocks());
            assert_eq!(back.document().len(), engine.document().len());
            for qs in ["PO//Qty", "PO/Line", "//Amount"] {
                let query = crate::api::Query::ptq(TwigPattern::parse(qs).unwrap());
                assert_eq!(
                    back.run(&query).unwrap().answers,
                    engine.run(&query).unwrap().answers,
                    "{qs}"
                );
            }
        }
    }

    #[test]
    fn snapshot_preserves_text_and_attrs() {
        let (pm, tree) = workload();
        let doc = {
            let mut b = Document::builder("Order");
            let root = b.root();
            let n = b.add_child(root, "Item");
            b.set_text(n, "héllo — utf8 ✓");
            b.add_attr(n, "currency", "EUR");
            b.add_attr(n, "unit", "kg");
            b.finish()
        };
        let engine = QueryEngine::new(pm, doc, tree);
        let back = decode_engine_snapshot(&encode_engine_snapshot(&engine)).unwrap();
        let item = back.document().nodes_with_label("Item")[0];
        assert_eq!(back.document().text(item), Some("héllo — utf8 ✓"));
        assert_eq!(back.document().attr(item, "currency"), Some("EUR"));
        assert_eq!(back.document().attr(item, "unit"), Some("kg"));
    }

    #[test]
    fn snapshot_rejects_unsupported_version() {
        let (pm, tree) = workload();
        let doc = Document::builder("Order").finish();
        let mut bytes = encode_engine_snapshot(&QueryEngine::new(pm, doc, tree));
        bytes[4] = 99; // version varint lives right after the magic
        assert_eq!(
            decode_engine_snapshot(&bytes).unwrap_err(),
            DecodeError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn snapshot_rejects_bad_strings_and_malformed_trees() {
        // Hand-craft a snapshot whose source schema name is invalid UTF-8.
        let mut bad_string = Vec::new();
        bad_string.extend_from_slice(MAGIC_SNAPSHOT);
        put_varint(&mut bad_string, SNAPSHOT_VERSION);
        put_varint(&mut bad_string, 2); // name length...
        bad_string.extend_from_slice(&[0xFF, 0xFE]); // ...invalid bytes
        assert_eq!(
            decode_engine_snapshot(&bad_string).unwrap_err(),
            DecodeError::BadString
        );

        // A schema node whose parent does not precede it.
        let mut bad_parent = Vec::new();
        bad_parent.extend_from_slice(MAGIC_SNAPSHOT);
        put_varint(&mut bad_parent, SNAPSHOT_VERSION);
        put_str(&mut bad_parent, "s");
        put_varint(&mut bad_parent, 2); // two nodes
        put_str(&mut bad_parent, "Root");
        bad_parent.push(0);
        put_str(&mut bad_parent, "Child");
        put_varint(&mut bad_parent, 5); // parent id 5 >= node id 1
        bad_parent.push(0);
        assert_eq!(
            decode_engine_snapshot(&bad_parent).unwrap_err(),
            DecodeError::Malformed
        );

        // An empty node table.
        let mut empty = Vec::new();
        empty.extend_from_slice(MAGIC_SNAPSHOT);
        put_varint(&mut empty, SNAPSHOT_VERSION);
        put_str(&mut empty, "s");
        put_varint(&mut empty, 0); // zero schema nodes
        assert_eq!(
            decode_engine_snapshot(&empty).unwrap_err(),
            DecodeError::Malformed
        );
    }

    #[test]
    fn snapshot_truncation_and_magic() {
        let (pm, tree) = workload();
        let doc = Document::builder("Order").finish();
        let bytes = encode_engine_snapshot(&QueryEngine::new(pm, doc, tree));
        assert_eq!(
            decode_engine_snapshot(&bytes[..bytes.len() - 1]).unwrap_err(),
            DecodeError::Truncated
        );
        assert_eq!(
            decode_engine_snapshot(b"UXM0whatever").unwrap_err(),
            DecodeError::BadMagic
        );
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert_eq!(
            decode_engine_snapshot(&trailing).unwrap_err(),
            DecodeError::Truncated
        );
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.varint().unwrap(), v);
            assert!(r.finish().is_ok());
        }
    }
}
