//! Poison-tolerant lock acquisition.
//!
//! `std`'s `Mutex`/`RwLock` poison when a holder panics, and every
//! *later* `lock()` then errors — one contained panic would otherwise
//! wedge every serving thread that shares the lock. All state guarded
//! by these locks in this crate is valid at every instruction boundary
//! (counters, queues of owned values, plain maps), so the right
//! recovery is to take the lock anyway and keep serving.

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks `m`, recovering the guard if a previous holder panicked.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-locks `l`, recovering the guard if a writer panicked.
pub(crate) fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks `l`, recovering the guard if a holder panicked.
pub(crate) fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn poisoned_locks_still_serve() {
        let m = Arc::new(Mutex::new(7u32));
        let l = Arc::new(RwLock::new(11u32));
        let (m2, l2) = (Arc::clone(&m), Arc::clone(&l));
        // Poison both locks by panicking while holding them.
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            let _w = l2.write().unwrap();
            panic!("poison");
        })
        .join();
        assert!(m.lock().is_err(), "mutex is poisoned");
        assert_eq!(*lock(&m), 7);
        *lock(&m) += 1;
        assert_eq!(*lock(&m), 8);
        assert_eq!(*read(&l), 11);
        *write(&l) += 1;
        assert_eq!(*read(&l), 12);
    }
}
