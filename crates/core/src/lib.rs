//! # uxm-core — block trees and probabilistic twig queries
//!
//! The paper's primary contribution:
//!
//! * [`mapping`] — possible mappings with probabilities (§I, §V),
//! * [`block`] — blocks and c-blocks (Definitions 1–2),
//! * [`block_tree`] — the block tree and its bottom-up construction
//!   (Definition 3, Algorithms 1–2, Lemmas 1–2),
//! * [`compress`] — mapping compression and storage accounting (the
//!   compression-ratio metric of §VI),
//! * [`rewrite`] — target→source query rewriting under a mapping,
//! * [`ptq`] — the probabilistic twig query and `query_basic`
//!   (Definition 4, Algorithm 3),
//! * [`ptq_tree`] — PTQ evaluation with the block tree (Algorithm 4),
//! * [`topk`] — top-k PTQ (Definition 5),
//! * [`stats`] — o-ratio and c-block distribution metrics (§VI),
//! * [`path_ptq`] — node-granularity PTQ (an extension: exact semantics
//!   when element labels repeat),
//! * [`engine`] — the [`engine::QueryEngine`] session layer every query
//!   entry point evaluates through: interned labels, precomputed
//!   relevance bitsets, and sharded, thread-safe `(query, mapping)`
//!   rewrite caches (the engine is `Send + Sync`),
//! * [`api`] — the unified query surface: the typed [`api::Query`] AST
//!   (PTQ, top-k, keyword, and aggregate forms; twig patterns carry
//!   value predicates, wildcards, and descendant axes), the uniform
//!   [`api::QueryResponse`] with provenance and execution stats, and
//!   its canonical JSON wire format,
//! * [`aggregate`] — COUNT/SUM/MIN/MAX aggregate answers over PTQ
//!   matches: per-mapping rows, the probability-weighted marginal, and
//!   the associative cross-shard merge,
//! * [`planner`] — the cost-aware choice between naive, block-tree,
//!   and compiled evaluation, driven by engine statistics unless a
//!   query pins it,
//! * [`exec`] — compiled query execution: flat bytecode programs
//!   lowered once per query shape, interpreted by a register VM over
//!   the engine's columnar arenas, and replayed from a sharded
//!   per-engine program cache,
//! * [`error`] — the crate-wide [`error::UxmError`] every layer fails
//!   with,
//! * [`json`] — the minimal canonical-JSON support under the wire
//!   format,
//! * [`registry`] — the [`registry::EngineRegistry`] serving layer:
//!   many named engines, concurrent batched queries, LRU eviction under
//!   a memory budget, and lazy hydration from engine snapshots,
//! * [`server`] — the [`server::Server`] HTTP/JSON front end over a
//!   registry: a dependency-free threaded HTTP/1.1 server (plus the
//!   [`server::Client`] test helper) speaking the canonical wire
//!   format over real sockets — what `uxm serve` runs,
//! * [`router`] — horizontal scale-out: a [`router::Router`]
//!   scatter-gathering over N shard registries (each with its own
//!   budget and thrash gate) behind a consistent-hash ring, with an
//!   exact cross-shard top-k merge — what `uxm serve --shards N` runs,
//! * [`storage`] — binary codecs for mapping sets and whole engine
//!   snapshots (see the snapshot format/version notes there).
//!
//! The layer stack, bottom to top (the prose version lives in
//! `docs/architecture.md`):
//!
//! ```text
//! uxm-xml / uxm-twig          schemas, documents, twig patterns
//!   └─ mapping / block_tree   possible mappings, c-blocks (§III)
//!        └─ engine            one (schemas, mappings, document) session
//!             └─ api+planner  typed Query/QueryResponse, plan choice
//!                  └─ registry   many named engines, snapshots, LRU
//!                       └─ server   HTTP/1.1 JSON over the registry
//!                            └─ router   N shard registries behind a
//!                                        consistent-hash ring
//! ```
//!
//! # Quickstart
//!
//! Build a [`engine::QueryEngine`] once per `(mappings, document)`
//! session, then serve typed [`api::Query`] requests through
//! [`engine::QueryEngine::run`] — the one entry point:
//!
//! ```
//! use uxm_core::api::Query;
//! use uxm_core::block_tree::BlockTreeConfig;
//! use uxm_core::engine::QueryEngine;
//! use uxm_core::mapping::PossibleMappings;
//! use uxm_matching::Matcher;
//! use uxm_twig::TwigPattern;
//! use uxm_xml::{DocGenConfig, Document, Schema};
//!
//! let source = Schema::parse_outline("Order(Buyer(Name) Item(Price))").unwrap();
//! let target = Schema::parse_outline("PO(Vendor(ContactName) Line(UnitPrice))").unwrap();
//! let matching = Matcher::default().match_schemas(&source, &target);
//! let pm = PossibleMappings::top_h(&matching, 8);
//! let doc = Document::generate(&source, &DocGenConfig::small(), 7);
//!
//! let engine = QueryEngine::build(pm, doc, &BlockTreeConfig::default());
//! let q = TwigPattern::parse("PO//ContactName").unwrap();
//! let full = engine.run(&Query::ptq(q.clone())).unwrap();
//! let top2 = engine.run(&Query::topk(q, 2)).unwrap();
//! // "laptop" matches no target label — a value term, never filtered.
//! let kw = engine.run(&Query::keyword(vec!["laptop".into()])).unwrap();
//! assert!(top2.len() <= full.len());
//! assert_eq!(kw.len(), engine.mappings().len());
//! ```
//!
//! The legacy free functions (`ptq_basic`, `ptq_with_tree`, `topk_ptq`,
//! …) remain as **deprecated** shims building a throwaway session per
//! call; the [`api`] module docs carry the migration table.
//!
//! To serve **many** schema-pair/document sessions at once — with
//! snapshot persistence and a memory budget — put engines behind an
//! [`registry::EngineRegistry`]; its module docs hold a worked example.

pub mod aggregate;
pub mod api;
pub mod block;
pub mod block_tree;
pub mod compress;
pub mod engine;
pub mod error;
pub mod exec;
pub mod json;
pub mod keyword;
pub mod mapping;
pub mod path_ptq;
pub mod planner;
pub mod ptq;
pub mod ptq_tree;
pub mod registry;
pub mod rewrite;
pub mod router;
pub mod semantics;
pub mod server;
pub mod stats;
pub mod storage;
pub(crate) mod sync;
pub mod topk;

pub use aggregate::{AggFunc, AggRow, AggregateResult};
pub use api::{Answer, EvaluatorHint, Granularity, Query, QueryOptions, QueryResponse};
pub use block::{Block, BlockId};
pub use block_tree::{BlockTree, BlockTreeConfig};
pub use engine::QueryEngine;
pub use error::UxmError;
pub use keyword::{KeywordAnswer, KeywordError};
pub use mapping::{Mapping, MappingId, PossibleMappings};
pub use planner::{Evaluator, Plan, PlanReason};
pub use ptq::{PtqAnswer, PtqResult};
pub use registry::{BatchQuery, EngineRegistry, RegistryConfig, RegistryStats, Request, Response};
pub use router::{Ring, Router, RouterConfig, TopKAnswer};
pub use server::{Server, ServerConfig, ServerHandle};

// Legacy one-shot entry points, kept as deprecated shims over the
// engine (see the `api` module docs for the migration table).
#[allow(deprecated)]
pub use keyword::keyword_query;
#[allow(deprecated)]
pub use ptq::ptq_basic;
#[allow(deprecated)]
pub use ptq_tree::ptq_with_tree;
#[allow(deprecated)]
pub use registry::RegistryError;
#[allow(deprecated)]
pub use topk::topk_ptq;
