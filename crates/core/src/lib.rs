//! # uxm-core — block trees and probabilistic twig queries
//!
//! The paper's primary contribution:
//!
//! * [`mapping`] — possible mappings with probabilities (§I, §V),
//! * [`block`] — blocks and c-blocks (Definitions 1–2),
//! * [`block_tree`] — the block tree and its bottom-up construction
//!   (Definition 3, Algorithms 1–2, Lemmas 1–2),
//! * [`compress`] — mapping compression and storage accounting (the
//!   compression-ratio metric of §VI),
//! * [`rewrite`] — target→source query rewriting under a mapping,
//! * [`ptq`] — the probabilistic twig query and `query_basic`
//!   (Definition 4, Algorithm 3),
//! * [`ptq_tree`] — PTQ evaluation with the block tree (Algorithm 4),
//! * [`topk`] — top-k PTQ (Definition 5),
//! * [`stats`] — o-ratio and c-block distribution metrics (§VI),
//! * [`path_ptq`] — node-granularity PTQ (an extension: exact semantics
//!   when element labels repeat).

pub mod block;
pub mod block_tree;
pub mod compress;
pub mod keyword;
pub mod mapping;
pub mod path_ptq;
pub mod ptq;
pub mod ptq_tree;
pub mod rewrite;
pub mod semantics;
pub mod stats;
pub mod storage;
pub mod topk;

pub use block::{Block, BlockId};
pub use block_tree::{BlockTree, BlockTreeConfig};
pub use mapping::{Mapping, MappingId, PossibleMappings};
pub use ptq::{ptq_basic, PtqAnswer, PtqResult};
pub use ptq_tree::ptq_with_tree;
pub use topk::topk_ptq;
