//! The crate-wide error type: [`UxmError`].
//!
//! Before the unified query API, each query surface failed with its own
//! type — [`KeywordError`] from keyword evaluation, the registry's
//! `RegistryError`, [`DecodeError`] from snapshot codecs, and
//! [`TwigParseError`] from query parsing. [`UxmError`] absorbs all of
//! them (via `From` impls, so `?` just works), giving every layer — CLI,
//! registry batches, [`crate::engine::QueryEngine::run`] — one typed
//! error surface.

use crate::json::JsonError;
use crate::keyword::KeywordError;
use crate::storage::DecodeError;
use std::fmt;
use uxm_twig::TwigParseError;

/// Any failure the query stack can report.
///
/// The variants fold the legacy error types into one enum:
/// `KeywordError`, `DecodeError`, and `TwigParseError` are wrapped; the
/// old `RegistryError` variants (`UnknownEngine`, `InvalidName`,
/// `NoSnapshotDir`, `Io`) are carried directly, so
/// `uxm_core::registry::RegistryError` is now just a deprecated alias of
/// this type.
#[derive(Clone, Debug, PartialEq)]
pub enum UxmError {
    /// A twig pattern failed to parse.
    Parse(TwigParseError),
    /// A keyword query was rejected by the evaluator.
    Keyword(KeywordError),
    /// A stored artifact (mapping set or engine snapshot) failed to
    /// decode.
    Decode(DecodeError),
    /// No engine is registered (or snapshotted) under that name.
    UnknownEngine(String),
    /// An engine name unusable as a snapshot file stem (path separators,
    /// `..`, or empty).
    InvalidName(String),
    /// Snapshot persistence was requested but no snapshot directory is
    /// configured.
    NoSnapshotDir,
    /// Reading or writing a file failed (the message names the path).
    Io(String),
    /// An input artifact (schema outline/XSD, XML document) failed to
    /// parse; the message names the file.
    Input(String),
    /// A batch run completed but some requests failed (each already
    /// reported individually).
    Batch {
        /// How many requests failed.
        failed: usize,
    },
    /// The service shed this request: a shared resource (connection
    /// queue, hydration budget) is saturated and admitting more work
    /// would degrade everyone. Served as HTTP 503 with a `Retry-After`
    /// header; the request was not evaluated and is safe to retry.
    Overloaded {
        /// Which resource was saturated (e.g. `"connection queue"`).
        reason: String,
        /// Suggested client back-off before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// This client exceeded its fair share of a per-client limit, so the
    /// request was shed to keep one hot client from starving the rest.
    /// Served as HTTP 429 with a `Retry-After` header; safe to retry.
    RateLimited {
        /// Which limit was hit (e.g. `"connections per client"`).
        reason: String,
        /// Suggested client back-off before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// A request handler failed unexpectedly (e.g. panicked); the
    /// failure was contained to the one request and the service keeps
    /// running. Served as HTTP 500.
    Internal(String),
    /// The shard that owns the requested engine could not be reached
    /// over the router's internal hop (see [`crate::router`]). Served as
    /// HTTP 503 with a `Retry-After` header; the router retries once
    /// against a fresh ring before reporting this, so it usually means a
    /// shard process is genuinely down mid-rebalance.
    ShardUnavailable {
        /// The unreachable shard's id.
        shard: u64,
        /// What failed on the internal hop.
        reason: String,
    },
    /// A wire-format document failed to parse or had the wrong shape.
    Json(String),
    /// A structurally valid [`crate::api::Query`] with unusable options
    /// (e.g. a non-finite probability threshold).
    InvalidQuery(String),
    /// Malformed command-line usage (CLI layer only).
    Usage(String),
}

impl fmt::Display for UxmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UxmError::Parse(e) => write!(f, "query parse: {e}"),
            UxmError::Keyword(e) => write!(f, "keyword query: {e}"),
            UxmError::Decode(e) => write!(f, "snapshot decode: {e}"),
            UxmError::UnknownEngine(n) => write!(f, "no engine named {n:?}"),
            UxmError::InvalidName(n) => write!(f, "invalid engine name {n:?}"),
            UxmError::NoSnapshotDir => write!(f, "registry has no snapshot directory"),
            UxmError::Io(e) => write!(f, "i/o: {e}"),
            UxmError::Input(e) => write!(f, "input: {e}"),
            UxmError::Batch { failed } => write!(f, "batch: {failed} request(s) failed"),
            UxmError::Overloaded {
                reason,
                retry_after_ms,
            } => write!(f, "overloaded: {reason} (retry in {retry_after_ms}ms)"),
            UxmError::RateLimited {
                reason,
                retry_after_ms,
            } => write!(f, "rate limited: {reason} (retry in {retry_after_ms}ms)"),
            UxmError::Internal(e) => write!(f, "internal: {e}"),
            UxmError::ShardUnavailable { shard, reason } => {
                write!(f, "shard {shard} unavailable: {reason}")
            }
            UxmError::Json(e) => write!(f, "wire format: {e}"),
            UxmError::InvalidQuery(e) => write!(f, "invalid query: {e}"),
            UxmError::Usage(e) => write!(f, "usage: {e}"),
        }
    }
}

impl std::error::Error for UxmError {}

impl From<TwigParseError> for UxmError {
    fn from(e: TwigParseError) -> UxmError {
        UxmError::Parse(e)
    }
}

impl From<KeywordError> for UxmError {
    fn from(e: KeywordError) -> UxmError {
        UxmError::Keyword(e)
    }
}

impl From<DecodeError> for UxmError {
    fn from(e: DecodeError) -> UxmError {
        UxmError::Decode(e)
    }
}

impl From<JsonError> for UxmError {
    fn from(e: JsonError) -> UxmError {
        UxmError::Json(e.to_string())
    }
}

impl UxmError {
    /// Wraps an I/O failure, prefixing the path it concerned.
    pub fn io(path: impl fmt::Display, e: std::io::Error) -> UxmError {
        UxmError::Io(format!("{path}: {e}"))
    }

    /// The stable kebab-case kind name carried in wire-format error
    /// bodies (`{"error":{"kind":…}}`, see [`crate::server`] and
    /// `docs/wire-format.md`). One name per variant; messages may
    /// change between releases, kinds do not.
    pub fn kind(&self) -> &'static str {
        match self {
            UxmError::Parse(_) => "parse",
            UxmError::Keyword(_) => "keyword",
            UxmError::Decode(_) => "decode",
            UxmError::UnknownEngine(_) => "unknown-engine",
            UxmError::InvalidName(_) => "invalid-name",
            UxmError::NoSnapshotDir => "no-snapshot-dir",
            UxmError::Io(_) => "io",
            UxmError::Input(_) => "input",
            UxmError::Batch { .. } => "batch",
            UxmError::Overloaded { .. } => "overloaded",
            UxmError::RateLimited { .. } => "rate-limited",
            UxmError::Internal(_) => "internal",
            UxmError::ShardUnavailable { .. } => "shard-unavailable",
            UxmError::Json(_) => "json",
            UxmError::InvalidQuery(_) => "invalid-query",
            UxmError::Usage(_) => "usage",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_impls_absorb_legacy_errors() {
        let k: UxmError = KeywordError::Empty.into();
        assert_eq!(k, UxmError::Keyword(KeywordError::Empty));
        let d: UxmError = DecodeError::BadMagic.into();
        assert_eq!(d, UxmError::Decode(DecodeError::BadMagic));
        let p: UxmError = TwigParseError::Empty.into();
        assert_eq!(p, UxmError::Parse(TwigParseError::Empty));
        let j: UxmError = crate::json::JsonError {
            offset: 3,
            message: "expected ':'",
        }
        .into();
        assert!(matches!(j, UxmError::Json(_)));
    }

    #[test]
    fn shed_kinds_are_stable() {
        let o = UxmError::Overloaded {
            reason: "connection queue full".into(),
            retry_after_ms: 250,
        };
        assert_eq!(o.kind(), "overloaded");
        assert!(o.to_string().contains("250ms"));
        let r = UxmError::RateLimited {
            reason: "connections per client".into(),
            retry_after_ms: 100,
        };
        assert_eq!(r.kind(), "rate-limited");
        assert!(r.to_string().starts_with("rate limited:"));
        assert_eq!(
            UxmError::Internal("handler panicked".into()).kind(),
            "internal"
        );
        let s = UxmError::ShardUnavailable {
            shard: 3,
            reason: "connect refused".into(),
        };
        assert_eq!(s.kind(), "shard-unavailable");
        assert_eq!(s.to_string(), "shard 3 unavailable: connect refused");
    }

    #[test]
    fn display_is_prefixed_by_layer() {
        assert_eq!(
            UxmError::UnknownEngine("po".into()).to_string(),
            "no engine named \"po\""
        );
        assert!(UxmError::Keyword(KeywordError::Empty)
            .to_string()
            .starts_with("keyword query:"));
        assert!(UxmError::io("f.txt", std::io::Error::other("boom"))
            .to_string()
            .contains("f.txt"));
    }
}
