//! Top-k probabilistic twig queries (Definition 5, §IV-C).
//!
//! Only the k answer tuples with the highest probabilities are wanted. As
//! the paper observes, those must come from the k most-probable *relevant*
//! mappings, so the mapping set is pruned right after `filter_mappings` —
//! before any query evaluation happens.

use crate::block_tree::BlockTree;
use crate::engine::{eval_tree_over, SessionState};
use crate::mapping::{MappingId, PossibleMappings};
use crate::ptq::PtqResult;
use crate::rewrite::filter_mappings;
use uxm_twig::TwigPattern;
use uxm_xml::Document;

/// Evaluates a top-k PTQ with the block tree: filter, keep the k
/// most-probable mappings, then evaluate only those.
///
/// Deprecated shim over [`crate::engine`] with a throwaway session.
///
/// Use instead: [`QueryEngine::run`](crate::engine::QueryEngine::run)
/// with [`Query::topk`](crate::api::Query::topk).
#[deprecated(note = "build an api::Query::topk and call QueryEngine::run")]
pub fn topk_ptq(
    q: &TwigPattern,
    pm: &PossibleMappings,
    doc: &Document,
    tree: &BlockTree,
    k: usize,
) -> PtqResult {
    let ids = topk_mappings(q, pm, k);
    let state = SessionState::build(pm, doc);
    let mut res = eval_tree_over(q, pm, doc, tree, &state, &ids);
    res.answers.sort_by(|a, b| {
        b.probability
            .total_cmp(&a.probability)
            .then(a.mapping.cmp(&b.mapping))
    });
    res
}

/// The k most-probable relevant mappings for `q` (ties broken by id).
pub fn topk_mappings(q: &TwigPattern, pm: &PossibleMappings, k: usize) -> Vec<MappingId> {
    let mut ids = filter_mappings(q, pm);
    ids.sort_by(|&a, &b| {
        pm.mapping(b)
            .prob
            .total_cmp(&pm.mapping(a).prob)
            .then(a.cmp(&b))
    });
    ids.truncate(k);
    ids
}

#[cfg(test)]
#[allow(deprecated)] // shim coverage: the legacy wrappers stay under test
mod tests {
    use super::*;
    use crate::block_tree::{BlockTree, BlockTreeConfig};
    use crate::ptq::ptq_basic;
    use uxm_xml::{parse_document, Schema};

    fn setup() -> (PossibleMappings, Document, BlockTree) {
        let source = Schema::parse_outline("Order(BP(BCN RCN OCN))").unwrap();
        let target = Schema::parse_outline("ORDER(IP(ICN))").unwrap();
        let s = |l: &str| source.nodes_with_label(l)[0];
        let t = |l: &str| target.nodes_with_label(l)[0];
        let pm = PossibleMappings::from_pairs(
            source.clone(),
            target.clone(),
            vec![
                (vec![(s("BP"), t("IP")), (s("BCN"), t("ICN"))], 3.0),
                (vec![(s("BP"), t("IP")), (s("RCN"), t("ICN"))], 2.0),
                (vec![(s("BP"), t("IP")), (s("OCN"), t("ICN"))], 1.0),
            ],
        );
        let doc = parse_document(
            "<Order><BP><BCN>Cathy</BCN><RCN>Bob</RCN><OCN>Alice</OCN></BP></Order>",
        )
        .unwrap();
        let tree = BlockTree::build(&pm.target.clone(), &pm, &BlockTreeConfig::default());
        (pm, doc, tree)
    }

    #[test]
    fn returns_k_highest_probability_answers() {
        let (pm, doc, tree) = setup();
        let q = TwigPattern::parse("//IP//ICN").unwrap();
        let res = topk_ptq(&q, &pm, &doc, &tree, 2);
        assert_eq!(res.len(), 2);
        assert!(res.answers[0].probability >= res.answers[1].probability);
        assert!((res.answers[0].probability - 0.5).abs() < 1e-9);
    }

    #[test]
    fn k_larger_than_mappings_returns_all() {
        let (pm, doc, tree) = setup();
        let q = TwigPattern::parse("//IP//ICN").unwrap();
        let res = topk_ptq(&q, &pm, &doc, &tree, 10);
        assert_eq!(res.len(), 3);
    }

    #[test]
    fn topk_answers_subset_of_full_ptq() {
        let (pm, doc, tree) = setup();
        let q = TwigPattern::parse("//IP//ICN").unwrap();
        let full = ptq_basic(&q, &pm, &doc);
        let top = topk_ptq(&q, &pm, &doc, &tree, 2);
        for a in top.iter() {
            let in_full = full
                .iter()
                .find(|f| f.mapping == a.mapping)
                .expect("top-k answer exists in full result");
            assert_eq!(in_full.matches, a.matches);
        }
    }

    #[test]
    fn k_zero_is_empty() {
        let (pm, doc, tree) = setup();
        let q = TwigPattern::parse("//IP//ICN").unwrap();
        assert!(topk_ptq(&q, &pm, &doc, &tree, 0).is_empty());
    }

    #[test]
    fn pruning_happens_before_evaluation() {
        let (pm, _, _) = setup();
        let q = TwigPattern::parse("//IP//ICN").unwrap();
        let ids = topk_mappings(&q, &pm, 1);
        assert_eq!(ids, vec![MappingId(0)], "highest-probability mapping kept");
    }
}
