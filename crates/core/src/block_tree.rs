//! The block tree and its construction (paper §III, Algorithms 1–2).
//!
//! The block tree mirrors the target schema; every node carries a list of
//! c-blocks anchored there. Construction is a post-order traversal:
//!
//! * **Leaf** (`init_block`): group mappings by the source element they
//!   assign to this target element; each group with support ≥ `τ·|M|`
//!   becomes a c-block.
//! * **Non-leaf** (`gen_non_leaf`): by Lemma 1, every c-block here is the
//!   composition of one "own-correspondence" group with one c-block per
//!   child; the mapping set is the intersection. By Lemma 2, if any child
//!   produced no c-blocks, neither can this node — the whole ancestor chain
//!   is skipped. Enumeration is bounded by `max_blocks` (`MAX_B`, global)
//!   and `max_failures` (`MAX_F`, failed combinations per node).
//!
//! A hash index (the paper's `H`) maps target-schema paths of nodes owning
//! c-blocks to those nodes, so the query evaluator can test "does the
//! query root sit on a block-bearing node" in O(1). Paths are interned
//! into a [`SymbolTable`] rather than used as owned `String` keys.
//!
//! Per-node block lists are stored as one CSR (offsets + flat array)
//! pair. Construction is post-order, so the c-blocks of each node occupy
//! a contiguous [`BlockId`] range in creation order — the builder records
//! only `(start, len)` ranges and never clones child block lists.

use crate::block::{Block, BlockId};
use crate::mapping::{MappingId, PossibleMappings};
use std::collections::HashMap;
use uxm_xml::{Schema, SchemaNodeId, SymbolTable};

/// Construction parameters (paper defaults: `τ=0.2`, `MAX_B=500`,
/// `MAX_F=500`).
#[derive(Clone, Debug)]
pub struct BlockTreeConfig {
    /// Confidence threshold `τ`: a c-block must be shared by at least
    /// `τ·|M|` mappings.
    pub tau: f64,
    /// Global cap on the number of c-blocks (`MAX_B`).
    pub max_blocks: usize,
    /// Per-node cap on failed block-combination attempts (`MAX_F`).
    pub max_failures: usize,
}

impl Default for BlockTreeConfig {
    fn default() -> Self {
        BlockTreeConfig {
            tau: 0.2,
            max_blocks: 500,
            max_failures: 500,
        }
    }
}

/// Counters exposed for the evaluation section's figures.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// c-blocks created (Fig 9(b)).
    pub blocks_created: usize,
    /// Failed combination attempts across all nodes.
    pub failed_attempts: usize,
    /// Nodes skipped thanks to Lemma 2.
    pub lemma2_skips: usize,
}

/// The block tree `X` plus the hash table `H`.
#[derive(Clone, Debug)]
pub struct BlockTree {
    /// All c-blocks, in creation order.
    blocks: Vec<Block>,
    /// CSR block lists: the c-blocks anchored at target node `t` are
    /// `node_block_list[node_block_offsets[t]..node_block_offsets[t+1]]`.
    node_block_offsets: Vec<u32>,
    node_block_list: Vec<BlockId>,
    /// Interned target paths (e.g. `ORDER.IP.ICN`) of block-bearing nodes.
    path_syms: SymbolTable,
    /// `H`: per path symbol, the node it denotes.
    hash: Vec<SchemaNodeId>,
    /// Construction counters.
    pub stats: BuildStats,
    /// The minimum support used (`ceil(τ·|M|)`, at least 1).
    pub min_support: usize,
}

impl BlockTree {
    /// Builds the block tree for mapping set `mappings` over its target
    /// schema (Algorithm 1).
    pub fn build(
        target: &Schema,
        mappings: &PossibleMappings,
        config: &BlockTreeConfig,
    ) -> BlockTree {
        let min_support = min_support(config.tau, mappings.len());
        let mut b = Builder {
            target,
            mappings,
            config,
            min_support,
            blocks: Vec::new(),
            node_ranges: vec![(0, 0); target.len()],
            path_syms: SymbolTable::new(),
            hash: Vec::new(),
            stats: BuildStats::default(),
        };
        b.construct_c_block(target.root());
        // Post-order construction anchors each node's blocks in one
        // contiguous creation-order run, so the CSR assembles from the
        // recorded ranges without touching the blocks again.
        let mut node_block_offsets = Vec::with_capacity(target.len() + 1);
        let mut node_block_list = Vec::with_capacity(b.blocks.len());
        node_block_offsets.push(0);
        for &(start, len) in &b.node_ranges {
            for k in 0..len {
                node_block_list.push(BlockId(start + k));
            }
            node_block_offsets.push(node_block_list.len() as u32);
        }
        BlockTree {
            blocks: b.blocks,
            node_block_offsets,
            node_block_list,
            path_syms: b.path_syms,
            hash: b.hash,
            stats: b.stats,
            min_support,
        }
    }

    /// Reassembles a block tree from stored blocks (the storage codec's
    /// decode path). Per-node lists and the hash index are rebuilt; the
    /// construction counters are zeroed.
    pub fn from_blocks(target: &Schema, blocks: Vec<Block>, min_support: usize) -> BlockTree {
        // CSR by counting sort over anchors; iterating blocks in creation
        // order keeps each per-node run in creation order, matching the
        // incremental builder.
        let mut node_block_offsets = vec![0u32; target.len() + 1];
        for b in &blocks {
            node_block_offsets[b.anchor.idx() + 1] += 1;
        }
        for i in 0..target.len() {
            node_block_offsets[i + 1] += node_block_offsets[i];
        }
        let mut cursor = node_block_offsets.clone();
        let mut node_block_list = vec![BlockId(0); blocks.len()];
        let mut path_syms = SymbolTable::new();
        let mut hash = Vec::new();
        for (i, b) in blocks.iter().enumerate() {
            node_block_list[cursor[b.anchor.idx()] as usize] = BlockId(i as u32);
            cursor[b.anchor.idx()] += 1;
            let sym = path_syms.intern(&target.path(b.anchor));
            if sym.idx() == hash.len() {
                hash.push(b.anchor); // first block on this path wins
            }
        }
        BlockTree {
            blocks,
            node_block_offsets,
            node_block_list,
            path_syms,
            hash,
            stats: BuildStats::default(),
            min_support,
        }
    }

    /// Reassembles a block tree from flat CSR columns — the snapshot v3
    /// decode path. `anchors[i]` is block `i`'s anchor;
    /// `corrs[corr_offsets[i]..corr_offsets[i+1]]` its correspondences;
    /// `map_ids[map_offsets[i]..map_offsets[i+1]]` its supporting
    /// mapping ids. Returns `None` on any CSR shape violation or
    /// out-of-range id (`n_source` bounds correspondence sources,
    /// `n_mappings` the mapping ids). Block counts are small (capped by
    /// [`BlockTreeConfig::max_blocks`]), so the per-node index and path
    /// hash are rebuilt as in [`BlockTree::from_blocks`].
    #[allow(clippy::too_many_arguments)]
    pub fn from_raw_columns(
        target: &Schema,
        anchors: &[u32],
        corr_offsets: &[u32],
        corrs: &[(SchemaNodeId, SchemaNodeId)],
        map_offsets: &[u32],
        map_ids: &[u32],
        n_source: usize,
        n_mappings: usize,
        min_support: usize,
    ) -> Option<BlockTree> {
        let b = anchors.len();
        let csr_ok = |offsets: &[u32], len: usize| {
            offsets.len() == b + 1
                && offsets[0] == 0
                && offsets.windows(2).all(|w| w[0] <= w[1])
                && *offsets.last().expect("b + 1 entries") as usize == len
        };
        if !csr_ok(corr_offsets, corrs.len()) || !csr_ok(map_offsets, map_ids.len()) {
            return None;
        }
        let (ns, nt) = (n_source as u32, target.len() as u32);
        if anchors.iter().any(|&a| a >= nt)
            || corrs.iter().any(|&(s, t)| s.0 >= ns || t.0 >= nt)
            || map_ids.iter().any(|&m| m as usize >= n_mappings)
        {
            return None;
        }
        let blocks = (0..b)
            .map(|i| Block {
                anchor: SchemaNodeId(anchors[i]),
                corrs: corrs[corr_offsets[i] as usize..corr_offsets[i + 1] as usize].to_vec(),
                mappings: map_ids[map_offsets[i] as usize..map_offsets[i + 1] as usize]
                    .iter()
                    .map(|&m| MappingId(m))
                    .collect(),
            })
            .collect();
        Some(BlockTree::from_blocks(target, blocks, min_support))
    }

    /// All blocks in creation order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Borrow one block.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.idx()]
    }

    /// Total number of c-blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// The c-blocks anchored at target node `t`.
    pub fn blocks_at(&self, t: SchemaNodeId) -> &[BlockId] {
        let (a, b) = (
            self.node_block_offsets[t.idx()] as usize,
            self.node_block_offsets[t.idx() + 1] as usize,
        );
        &self.node_block_list[a..b]
    }

    /// Hash-table lookup by target path (the paper's `find_node`),
    /// resolved through the interned path symbols.
    pub fn find_node(&self, path: &str) -> Option<SchemaNodeId> {
        self.path_syms.resolve(path).map(|s| self.hash[s.idx()])
    }

    /// True iff node `t` carries at least one c-block.
    pub fn has_blocks(&self, t: SchemaNodeId) -> bool {
        self.node_block_offsets[t.idx()] != self.node_block_offsets[t.idx() + 1]
    }

    /// Number of hash entries (nodes owning blocks).
    pub fn hash_len(&self) -> usize {
        self.hash.len()
    }

    /// Resident heap bytes of the tree: every block's correspondence and
    /// mapping arrays, the CSR block lists, and the path hash.
    pub fn arena_bytes(&self) -> usize {
        use std::mem::size_of;
        let blocks: usize = self
            .blocks
            .iter()
            .map(|b| {
                size_of::<Block>()
                    + b.corrs.len() * size_of::<(SchemaNodeId, SchemaNodeId)>()
                    + b.mappings.len() * size_of::<MappingId>()
            })
            .sum();
        blocks
            + self.node_block_offsets.len() * size_of::<u32>()
            + self.node_block_list.len() * size_of::<BlockId>()
            + self.hash.len() * size_of::<SchemaNodeId>()
            + self
                .path_syms
                .iter()
                .map(|(_, n)| n.len() + 16)
                .sum::<usize>()
    }
}

/// `ceil(τ·|M|)` with float-noise guard, at least 1.
pub fn min_support(tau: f64, m: usize) -> usize {
    ((tau * m as f64) - 1e-9).ceil().max(1.0) as usize
}

struct Builder<'a> {
    target: &'a Schema,
    mappings: &'a PossibleMappings,
    config: &'a BlockTreeConfig,
    min_support: usize,
    blocks: Vec<Block>,
    /// Per target node: `(start, len)` of its contiguous block range.
    node_ranges: Vec<(u32, u32)>,
    path_syms: SymbolTable,
    hash: Vec<SchemaNodeId>,
    stats: BuildStats,
}

impl<'a> Builder<'a> {
    /// Post-order construction (Algorithm 1's `construct_c_block`).
    /// Returns the number of c-blocks created at `t`.
    fn construct_c_block(&mut self, t: SchemaNodeId) -> usize {
        if self.target.is_leaf(t) {
            let start = self.blocks.len() as u32;
            let n = self.init_leaf(t);
            self.node_ranges[t.idx()] = (start, n as u32);
            if n > 0 {
                self.insert_hash(t);
            }
            return n;
        }
        let mut all_children_have_blocks = true;
        for &child in self.target.children(t) {
            if self.construct_c_block(child) == 0 {
                all_children_have_blocks = false;
            }
        }
        if !all_children_have_blocks {
            self.stats.lemma2_skips += 1;
            return 0; // Lemma 2
        }
        let start = self.blocks.len() as u32;
        let n = self.gen_non_leaf(t);
        self.node_ranges[t.idx()] = (start, n as u32);
        if n > 0 {
            self.insert_hash(t);
        }
        n
    }

    /// Groups mappings by their correspondence on `t` (the paper's
    /// `init_block`), returning groups meeting the support threshold as
    /// `(source, mapping ids)`.
    fn own_groups(&self, t: SchemaNodeId) -> Vec<(SchemaNodeId, Vec<MappingId>)> {
        let mut groups: HashMap<SchemaNodeId, Vec<MappingId>> = HashMap::new();
        for (id, m) in self.mappings.iter() {
            if let Some(s) = m.source_for_target(t) {
                groups.entry(s).or_default().push(id);
            }
        }
        let mut out: Vec<(SchemaNodeId, Vec<MappingId>)> = groups
            .into_iter()
            .filter(|(_, ms)| ms.len() >= self.min_support)
            .collect();
        // Deterministic order: strongest support first, then source id.
        out.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
        out
    }

    /// CASE 1 of Algorithm 1: c-blocks at a leaf.
    fn init_leaf(&mut self, t: SchemaNodeId) -> usize {
        let mut created = 0;
        for (s, ms) in self.own_groups(t) {
            if self.blocks.len() >= self.config.max_blocks {
                break;
            }
            self.attach(Block {
                anchor: t,
                corrs: vec![(s, t)],
                mappings: ms,
            });
            created += 1;
        }
        created
    }

    /// Algorithm 2: c-blocks at a non-leaf from own groups × child blocks.
    ///
    /// Child block lists are the already-recorded `(start, len)` ranges —
    /// two `u32`s each, never cloned — and the running mapping-set
    /// intersection reuses two scratch buffers, so a failed combination
    /// allocates nothing.
    fn gen_non_leaf(&mut self, t: SchemaNodeId) -> usize {
        let own = self.own_groups(t);
        if own.is_empty() {
            return 0;
        }
        let child_ranges: Vec<(u32, u32)> = self
            .target
            .children(t)
            .iter()
            .map(|&c| self.node_ranges[c.idx()])
            .collect();
        debug_assert!(
            child_ranges.iter().all(|&(_, len)| len > 0),
            "Lemma 2 ensured"
        );

        let mut created = 0;
        let mut failures = 0usize;
        let mut shared: Vec<MappingId> = Vec::new();
        let mut scratch: Vec<MappingId> = Vec::new();
        'outer: for (s, ms) in &own {
            // Odometer over one block choice per child.
            let mut idx = vec![0usize; child_ranges.len()];
            loop {
                // Intersect mapping sets with early bailout.
                shared.clear();
                shared.extend_from_slice(ms);
                for (k, &(start, _)) in child_ranges.iter().enumerate() {
                    let b = &self.blocks[start as usize + idx[k]];
                    scratch.clear();
                    intersect_sorted_into(&shared, &b.mappings, &mut scratch);
                    std::mem::swap(&mut shared, &mut scratch);
                    if shared.len() < self.min_support {
                        break;
                    }
                }
                if shared.len() >= self.min_support && self.blocks.len() < self.config.max_blocks {
                    let mut corrs = vec![(*s, t)];
                    for (k, &(start, _)) in child_ranges.iter().enumerate() {
                        corrs.extend_from_slice(&self.blocks[start as usize + idx[k]].corrs);
                    }
                    corrs.sort_by_key(|&(_, tt)| tt);
                    self.attach(Block {
                        anchor: t,
                        corrs,
                        mappings: std::mem::take(&mut shared),
                    });
                    created += 1;
                } else {
                    failures += 1;
                    self.stats.failed_attempts += 1;
                }
                if self.blocks.len() >= self.config.max_blocks
                    || failures >= self.config.max_failures
                {
                    break 'outer;
                }
                // Advance the odometer.
                let mut k = 0;
                loop {
                    if k == idx.len() {
                        break;
                    }
                    idx[k] += 1;
                    if idx[k] < child_ranges[k].1 as usize {
                        break;
                    }
                    idx[k] = 0;
                    k += 1;
                }
                if k == idx.len() {
                    break; // odometer wrapped: all combinations done
                }
            }
        }
        created
    }

    fn attach(&mut self, block: Block) {
        debug_assert!(block.mappings.windows(2).all(|w| w[0] < w[1]));
        self.blocks.push(block);
        self.stats.blocks_created += 1;
    }

    fn insert_hash(&mut self, t: SchemaNodeId) {
        let sym = self.path_syms.intern(&self.target.path(t));
        if sym.idx() == self.hash.len() {
            self.hash.push(t);
        } else {
            self.hash[sym.idx()] = t; // re-insert overwrites
        }
    }
}

/// Intersection of two sorted id lists into a caller-provided buffer.
fn intersect_sorted_into(a: &[MappingId], b: &[MappingId], out: &mut Vec<MappingId>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uxm_xml::Schema;

    /// The paper's running example: Fig. 1 schemas, Fig. 3 mappings.
    fn paper_example() -> (Schema, PossibleMappings) {
        let source =
            Schema::parse_outline("Order(BP(BOC(BCN) ROC(RCN) OOC(OCN)) SP(SCN_src))").unwrap();
        let target = Schema::parse_outline("ORDER(IP(ICN) SP2(SCN))").unwrap();
        let s = |l: &str| source.nodes_with_label(l)[0];
        let t = |l: &str| target.nodes_with_label(l)[0];
        // Fig. 3's five mappings (simplified to the shown correspondences).
        let pm = PossibleMappings::from_pairs(
            source.clone(),
            target.clone(),
            vec![
                // m1: Order~ORDER, BP~IP, BCN~ICN, RCN~SCN
                (
                    vec![
                        (s("Order"), t("ORDER")),
                        (s("BP"), t("IP")),
                        (s("BCN"), t("ICN")),
                        (s("RCN"), t("SCN")),
                    ],
                    3.0,
                ),
                // m2: Order~ORDER, BP~IP, BCN~ICN, OCN~SCN
                (
                    vec![
                        (s("Order"), t("ORDER")),
                        (s("BP"), t("IP")),
                        (s("BCN"), t("ICN")),
                        (s("OCN"), t("SCN")),
                    ],
                    2.5,
                ),
                // m3: Order~ORDER, SP~IP, RCN~ICN, OCN~SCN
                (
                    vec![
                        (s("Order"), t("ORDER")),
                        (s("SP"), t("IP")),
                        (s("RCN"), t("ICN")),
                        (s("OCN"), t("SCN")),
                    ],
                    2.0,
                ),
                // m4: Order~ORDER, BP~IP, RCN~ICN, BCN~SCN
                (
                    vec![
                        (s("Order"), t("ORDER")),
                        (s("BP"), t("IP")),
                        (s("RCN"), t("ICN")),
                        (s("BCN"), t("SCN")),
                    ],
                    1.5,
                ),
                // m5: Order~ORDER, BP~IP, OCN~ICN, BCN~SCN
                (
                    vec![
                        (s("Order"), t("ORDER")),
                        (s("BP"), t("IP")),
                        (s("OCN"), t("ICN")),
                        (s("BCN"), t("SCN")),
                    ],
                    1.0,
                ),
            ],
        );
        (target, pm)
    }

    #[test]
    fn min_support_rounding() {
        assert_eq!(min_support(0.4, 5), 2);
        assert_eq!(min_support(0.2, 100), 20);
        assert_eq!(min_support(0.3, 5), 2); // 1.5 -> 2
        assert_eq!(min_support(0.0, 5), 1); // at least one
        assert_eq!(min_support(1.0, 5), 5);
    }

    #[test]
    fn paper_example_blocks_at_icn() {
        // With tau = 0.4 (min support 2), ICN has exactly the two c-blocks
        // of Fig. 4(a): (BCN~ICN){m1,m2} and (RCN~ICN){m3,m4}.
        let (target, pm) = paper_example();
        let cfg = BlockTreeConfig {
            tau: 0.4,
            ..BlockTreeConfig::default()
        };
        let tree = BlockTree::build(&target, &pm, &cfg);
        let icn = target.nodes_with_label("ICN")[0];
        let at_icn = tree.blocks_at(icn);
        assert_eq!(at_icn.len(), 2, "b1 and b2, not b3 (support 1)");
        for &bid in at_icn {
            let b = tree.block(bid);
            assert_eq!(b.support(), 2);
            assert!(b.validate(&target, &pm, tree.min_support).is_ok());
        }
    }

    #[test]
    fn paper_example_block_at_ip() {
        // Fig. 4(b): (BP~IP, BCN~ICN) shared by m1, m2 is the c-block b5.
        let (target, pm) = paper_example();
        let cfg = BlockTreeConfig {
            tau: 0.4,
            ..BlockTreeConfig::default()
        };
        let tree = BlockTree::build(&target, &pm, &cfg);
        let ip = target.nodes_with_label("IP")[0];
        let at_ip = tree.blocks_at(ip);
        assert_eq!(at_ip.len(), 1);
        let b = tree.block(at_ip[0]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.mappings, vec![MappingId(0), MappingId(1)]);
        assert!(b.validate(&target, &pm, tree.min_support).is_ok());
    }

    #[test]
    fn root_has_no_block_in_paper_example() {
        // Fig. 5: ORDER's own group spans all mappings, but no single
        // (IP-block × SP2-block) combination is shared by >= 2 mappings...
        // actually (BP~IP,BCN~ICN){m1,m2} x SCN blocks: RCN~SCN{m1},
        // OCN~SCN{m2,m3}, BCN~SCN{m4,m5}; intersections have support <= 1.
        let (target, pm) = paper_example();
        let cfg = BlockTreeConfig {
            tau: 0.4,
            ..BlockTreeConfig::default()
        };
        let tree = BlockTree::build(&target, &pm, &cfg);
        assert!(tree.blocks_at(target.root()).is_empty());
    }

    #[test]
    fn hash_contains_paths_of_block_nodes() {
        let (target, pm) = paper_example();
        let cfg = BlockTreeConfig {
            tau: 0.4,
            ..BlockTreeConfig::default()
        };
        let tree = BlockTree::build(&target, &pm, &cfg);
        assert_eq!(
            tree.find_node("ORDER.IP.ICN"),
            Some(target.nodes_with_label("ICN")[0])
        );
        assert_eq!(
            tree.find_node("ORDER.IP"),
            Some(target.nodes_with_label("IP")[0])
        );
        assert_eq!(tree.find_node("ORDER"), None, "no block at root");
        assert_eq!(tree.find_node("NOPE"), None);
    }

    #[test]
    fn all_blocks_satisfy_definition() {
        let (target, pm) = paper_example();
        for tau in [0.1, 0.2, 0.4, 0.6, 1.0] {
            let cfg = BlockTreeConfig {
                tau,
                ..BlockTreeConfig::default()
            };
            let tree = BlockTree::build(&target, &pm, &cfg);
            for b in tree.blocks() {
                assert!(
                    b.validate(&target, &pm, tree.min_support).is_ok(),
                    "tau={tau}: {:?}",
                    b.validate(&target, &pm, tree.min_support)
                );
            }
        }
    }

    #[test]
    fn higher_tau_never_more_blocks() {
        let (target, pm) = paper_example();
        let mut last = usize::MAX;
        for tau in [0.1, 0.2, 0.4, 0.6, 0.9] {
            let cfg = BlockTreeConfig {
                tau,
                ..BlockTreeConfig::default()
            };
            let tree = BlockTree::build(&target, &pm, &cfg);
            assert!(tree.block_count() <= last, "tau={tau}");
            last = tree.block_count();
        }
    }

    #[test]
    fn max_blocks_cap_respected() {
        let (target, pm) = paper_example();
        let cfg = BlockTreeConfig {
            tau: 0.2,
            max_blocks: 2,
            max_failures: 500,
        };
        let tree = BlockTree::build(&target, &pm, &cfg);
        assert!(tree.block_count() <= 2);
    }

    #[test]
    fn lemma2_skips_counted() {
        // A target schema where a child (XX) never gets blocks: parent and
        // root must be skipped.
        let source = Schema::parse_outline("A(B)").unwrap();
        let target = Schema::parse_outline("R(P(Q XX))").unwrap();
        let sa = source.nodes_with_label("B")[0];
        let tq = target.nodes_with_label("Q")[0];
        let pm = PossibleMappings::from_pairs(
            source.clone(),
            target.clone(),
            vec![(vec![(sa, tq)], 1.0), (vec![(sa, tq)], 1.0)],
        );
        let tree = BlockTree::build(&target, &pm, &BlockTreeConfig::default());
        assert!(tree.stats.lemma2_skips >= 1);
        assert_eq!(tree.block_count(), 1); // only at Q
    }
}
