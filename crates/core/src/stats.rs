//! Metrics used by the paper's evaluation (§VI): mapping overlap (o-ratio)
//! and c-block size distributions.

use crate::block_tree::BlockTree;
use crate::mapping::PossibleMappings;
use uxm_xml::Schema;

/// The o-ratio of two mappings: `|m_i ∩ m_j| / |m_i ∪ m_j|` over their
/// correspondence sets.
pub fn pair_o_ratio(
    a: &[(uxm_xml::SchemaNodeId, uxm_xml::SchemaNodeId)],
    b: &[(uxm_xml::SchemaNodeId, uxm_xml::SchemaNodeId)],
) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    // Both sorted by (target, source) — merge-count the intersection.
    let mut shared = 0usize;
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match (a[i].1, a[i].0).cmp(&(b[j].1, b[j].0)) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                shared += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let union = a.len() + b.len() - shared;
    shared as f64 / union as f64
}

/// The o-ratio of a mapping set: the average pairwise o-ratio (Table II).
pub fn o_ratio(pm: &PossibleMappings) -> f64 {
    let n = pm.len();
    if n < 2 {
        return 1.0;
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let a = &pm.mapping(crate::mapping::MappingId(i as u32)).pairs;
            let b = &pm.mapping(crate::mapping::MappingId(j as u32)).pairs;
            total += pair_o_ratio(a, b);
            pairs += 1;
        }
    }
    total / pairs as f64
}

/// Histogram of c-block sizes: `hist[k]` = number of blocks with `k`
/// correspondences (Fig 9(c)'s distribution).
pub fn block_size_histogram(tree: &BlockTree) -> Vec<usize> {
    let max = tree.blocks().iter().map(|b| b.len()).max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for b in tree.blocks() {
        hist[b.len()] += 1;
    }
    hist
}

/// Average c-block size in correspondences (the paper reports 5.33 on D7).
pub fn avg_block_size(tree: &BlockTree) -> f64 {
    if tree.block_count() == 0 {
        return 0.0;
    }
    tree.blocks().iter().map(|b| b.len()).sum::<usize>() as f64 / tree.block_count() as f64
}

/// The fraction of target-schema nodes covered by the largest c-block
/// (the paper reports 24.7% on D7).
pub fn max_block_coverage(tree: &BlockTree, target: &Schema) -> f64 {
    let max = tree.blocks().iter().map(|b| b.len()).max().unwrap_or(0);
    max as f64 / target.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_tree::BlockTreeConfig;
    use uxm_xml::SchemaNodeId;

    fn id(i: u32) -> SchemaNodeId {
        SchemaNodeId(i)
    }

    #[test]
    fn pair_o_ratio_cases() {
        let a = vec![(id(1), id(1)), (id(2), id(2))];
        let b = vec![(id(1), id(1)), (id(3), id(3))];
        assert!((pair_o_ratio(&a, &b) - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(pair_o_ratio(&a, &a), 1.0);
        assert_eq!(pair_o_ratio(&a, &[]), 0.0);
        assert_eq!(pair_o_ratio(&[], &[]), 1.0);
    }

    #[test]
    fn o_ratio_of_identical_mappings_is_one() {
        let source = uxm_xml::Schema::parse_outline("S(A)").unwrap();
        let target = uxm_xml::Schema::parse_outline("T(B)").unwrap();
        let pairs = vec![(id(1), id(1))];
        let pm =
            PossibleMappings::from_pairs(source, target, vec![(pairs.clone(), 1.0), (pairs, 1.0)]);
        assert_eq!(o_ratio(&pm), 1.0);
    }

    #[test]
    fn histogram_and_avg() {
        let source = uxm_xml::Schema::parse_outline("O(A B)").unwrap();
        let target = uxm_xml::Schema::parse_outline("R(X Y)").unwrap();
        let s = |l: &str| source.nodes_with_label(l)[0];
        let t = |l: &str| target.nodes_with_label(l)[0];
        let pm = PossibleMappings::from_pairs(
            source.clone(),
            target.clone(),
            vec![
                (vec![(s("A"), t("X")), (s("B"), t("Y"))], 1.0),
                (vec![(s("A"), t("X")), (s("B"), t("Y"))], 1.0),
            ],
        );
        let tree = crate::block_tree::BlockTree::build(&target, &pm, &BlockTreeConfig::default());
        let hist = block_size_histogram(&tree);
        assert_eq!(hist.iter().sum::<usize>(), tree.block_count());
        assert!(avg_block_size(&tree) >= 1.0);
        assert!(max_block_coverage(&tree, &target) > 0.0);
    }
}
