//! Target→source query rewriting under a mapping (paper §IV).
//!
//! A twig query is posed against the target schema; to evaluate it on a
//! source document it must be rewritten through a mapping. Rather than
//! multiplying the query into one pattern per label combination, rewriting
//! produces, per query node, the *set* of source labels it may match (the
//! twig engine accepts label sets directly). A mapping that leaves some
//! query label without any correspondence is *irrelevant* for the query —
//! the paper's `filter_mappings`.

use crate::mapping::{MappingId, PossibleMappings};
use uxm_twig::TwigPattern;
use uxm_xml::{Schema, SchemaNodeId};

/// Rewrites `q` through mapping `id`: per query node, the source labels it
/// may match. `None` when the mapping is irrelevant for `q`.
pub fn rewrite_with_mapping(
    q: &TwigPattern,
    pm: &PossibleMappings,
    id: MappingId,
) -> Option<Vec<Vec<String>>> {
    let mut sets = Vec::with_capacity(q.len());
    for node in q.ids() {
        let labels = pm.source_labels_for(id, &q.node(node).label);
        if labels.is_empty() {
            return None;
        }
        sets.push(labels);
    }
    Some(sets)
}

/// Rewrites `q` through a raw correspondence set (sorted by target) — used
/// for evaluating a query once per c-block (`b.C` acts as a mini-mapping).
pub fn rewrite_with_pairs(
    q: &TwigPattern,
    source: &Schema,
    target: &Schema,
    pairs: &[(SchemaNodeId, SchemaNodeId)],
) -> Option<Vec<Vec<String>>> {
    let source_for = |t: SchemaNodeId| -> Option<SchemaNodeId> {
        pairs
            .binary_search_by_key(&t, |&(_, tt)| tt)
            .ok()
            .map(|i| pairs[i].0)
    };
    let mut sets = Vec::with_capacity(q.len());
    for node in q.ids() {
        let mut labels: Vec<String> = target
            .nodes_with_label(&q.node(node).label)
            .into_iter()
            .filter_map(source_for)
            .map(|s| source.label(s).to_string())
            .collect();
        if labels.is_empty() {
            return None;
        }
        labels.sort_unstable();
        labels.dedup();
        sets.push(labels);
    }
    Some(sets)
}

/// The paper's `filter_mappings`: ids of mappings relevant to `q`, in
/// mapping-id order.
pub fn filter_mappings(q: &TwigPattern, pm: &PossibleMappings) -> Vec<MappingId> {
    pm.ids()
        .filter(|&id| rewrite_with_mapping(q, pm, id).is_some())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> PossibleMappings {
        let source = Schema::parse_outline("Order(BP(BCN) SP(SCN))").unwrap();
        let target = Schema::parse_outline("ORDER(IP(ICN))").unwrap();
        let s = |l: &str| source.nodes_with_label(l)[0];
        let t = |l: &str| target.nodes_with_label(l)[0];
        PossibleMappings::from_pairs(
            source.clone(),
            target.clone(),
            vec![
                (
                    vec![
                        (s("Order"), t("ORDER")),
                        (s("BP"), t("IP")),
                        (s("BCN"), t("ICN")),
                    ],
                    2.0,
                ),
                (
                    vec![
                        (s("Order"), t("ORDER")),
                        (s("SP"), t("IP")),
                        (s("SCN"), t("ICN")),
                    ],
                    1.0,
                ),
                (vec![(s("Order"), t("ORDER"))], 0.5), // maps only the root
            ],
        )
    }

    #[test]
    fn rewrite_produces_source_labels() {
        let pm = setup();
        let q = TwigPattern::parse("ORDER//ICN").unwrap();
        let sets = rewrite_with_mapping(&q, &pm, MappingId(0)).unwrap();
        assert_eq!(sets[0], vec!["Order".to_string()]);
        assert_eq!(sets[1], vec!["BCN".to_string()]);
        let sets = rewrite_with_mapping(&q, &pm, MappingId(1)).unwrap();
        assert_eq!(sets[1], vec!["SCN".to_string()]);
    }

    #[test]
    fn irrelevant_mapping_is_none() {
        let pm = setup();
        let q = TwigPattern::parse("ORDER//ICN").unwrap();
        assert!(rewrite_with_mapping(&q, &pm, MappingId(2)).is_none());
    }

    #[test]
    fn filter_keeps_relevant_only() {
        let pm = setup();
        let q = TwigPattern::parse("ORDER//ICN").unwrap();
        assert_eq!(filter_mappings(&q, &pm), vec![MappingId(0), MappingId(1)]);
        let q_root = TwigPattern::parse("ORDER").unwrap();
        assert_eq!(filter_mappings(&q_root, &pm).len(), 3);
    }

    #[test]
    fn rewrite_with_pairs_matches_mapping_rewrite() {
        let pm = setup();
        let q = TwigPattern::parse("ORDER//ICN").unwrap();
        let m = pm.mapping(MappingId(0));
        let a = rewrite_with_mapping(&q, &pm, MappingId(0)).unwrap();
        let b = rewrite_with_pairs(&q, &pm.source, &pm.target, m.pairs).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_label_filters_everything() {
        let pm = setup();
        let q = TwigPattern::parse("ORDER//NOPE").unwrap();
        assert!(filter_mappings(&q, &pm).is_empty());
    }
}
