//! The HTTP serving layer: [`Server`] — a threaded HTTP/1.1 JSON
//! front end over an [`EngineRegistry`].
//!
//! The build is offline, so this is a dependency-free server on
//! `std::net` alone: a blocking accept loop feeds a bounded connection
//! queue drained by a fixed pool of worker threads, every worker speaks
//! plain HTTP/1.1 (persistent connections included), and every body on
//! the wire is the canonical JSON of [`crate::json`] — the exact bytes
//! [`crate::api::Query::to_json_string`] and
//! [`crate::api::QueryResponse::to_json_string`] produce. Because the
//! registry and its engines are `Send + Sync`, all workers share one
//! warm cache set: a query repeated by any client reuses the rewrites
//! computed for every other client.
//!
//! # Routes
//!
//! | Route                  | Body in                      | Body out |
//! |------------------------|------------------------------|----------|
//! | `POST /query/<engine>` | one [`Query`] | one [`QueryResponse`](crate::api::QueryResponse): `run()`'s response, its `answers` byte-identical to a direct run |
//! | `POST /batch`          | JSON array of `{"engine":…,"query":…}` | `{"results":[…]}`, one response or error object per request |
//! | `POST /topk`           | `{"engines":[…],"query":…}` (top-k query; `engines` optional) | `{"answers":[…],"k":…}` — the best *k* answers across the named (default: all known) engines in the pinned cross-engine order (see [`crate::router`]) |
//! | `POST /aggregate`      | `{"engines":[…],"query":…}` (aggregate query; `engines` optional) | `{"engines":[…],"func":…,"value":…}` — per-engine rows + marginals in name-ascending order, and the fleet value folded by [`crate::aggregate::merge_marginals`] |
//! | `GET /engines`         | —                            | registry listing with `approx_bytes`, eviction count, on-disk snapshots |
//! | `GET /stats`           | —                            | per-engine request/plan/cache aggregates + latency percentiles |
//! | `GET /healthz`         | —                            | `{"status":"ok"}` |
//!
//! The same serving shell (accept loop, worker pool, admission control,
//! panic containment) also fronts the sharded deployment: a
//! [`crate::router::Router`] binds it over a scatter-gather handler
//! instead of a registry, adding `GET /shards` and routing everything
//! else to per-shard servers over loopback.
//!
//! Failures never panic a worker: every error is a typed
//! [`UxmError`] rendered as `{"error":{"kind":…,"message":…}}` with the
//! status mapped from the error's kind (unknown engine → 404, malformed
//! request → 400, storage/I-O trouble → 500, oversized body → 413).
//! Even a request handler that *does* panic is contained: the one
//! request is answered with a typed 500 and the worker (and every
//! shared lock) keeps serving. The full wire grammar lives in
//! `docs/wire-format.md`.
//!
//! # Admission control
//!
//! Overload degrades into fast typed refusals, never an unbounded
//! backlog or a wedged accept loop:
//!
//! * a full connection queue ([`ServerConfig::queue_depth`]) sheds new
//!   connections with **503** (`"kind":"overloaded"`, `Retry-After`
//!   set) straight from the accept loop;
//! * one client IP holding more than
//!   [`ServerConfig::max_conns_per_client`] connections is shed with
//!   **429** (`"kind":"rate-limited"`, `Retry-After` set);
//! * a registry whose working set exceeds its memory budget refuses
//!   cold hydrations with **503** while evictions are thrashing (see
//!   [`crate::registry::RegistryConfig::thrash_evictions`]).
//!
//! Behind a router, the TCP peer of every shard-bound connection is the
//! router itself (loopback), so shard servers run with
//! [`ServerConfig::trust_forwarded_client`] set and bind the per-client
//! cap to the `x-uxm-client` identity the router forwards with each
//! request — 429s keep naming the real client, not the hop.
//!
//! Shed counts and contained panics are reported in the `"server"`
//! section of `GET /stats`; registry memory accounting (including
//! `unreclaimed_bytes`, the footprint of evicted-but-still-referenced
//! engines) in its `"registry"` section.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use uxm_core::api::Query;
//! use uxm_core::block_tree::BlockTreeConfig;
//! use uxm_core::engine::QueryEngine;
//! use uxm_core::mapping::PossibleMappings;
//! use uxm_core::registry::EngineRegistry;
//! use uxm_core::server::{Client, Server, ServerConfig};
//! use uxm_matching::Matcher;
//! use uxm_twig::TwigPattern;
//! use uxm_xml::{DocGenConfig, Document, Schema};
//!
//! // One small engine behind a registry...
//! let source = Schema::parse_outline("Order(Buyer(Name) Item(Price))").unwrap();
//! let target = Schema::parse_outline("PO(Vendor(ContactName) Line(UnitPrice))").unwrap();
//! let matching = Matcher::default().match_schemas(&source, &target);
//! let pm = PossibleMappings::top_h(&matching, 8);
//! let doc = Document::generate(&source, &DocGenConfig::small(), 7);
//! let registry = Arc::new(EngineRegistry::new());
//! let engine = registry.insert("orders", QueryEngine::build(pm, doc, &BlockTreeConfig::default()));
//!
//! // ...served over a real socket by two workers.
//! let server = Server::bind(
//!     Arc::clone(&registry),
//!     "127.0.0.1:0",
//!     ServerConfig { workers: 2, ..ServerConfig::default() },
//! )
//! .unwrap();
//! let handle = server.start();
//!
//! let mut client = Client::connect(handle.addr()).unwrap();
//! let (status, body) = client.get("/healthz").unwrap();
//! assert_eq!((status, body.as_str()), (200, "{\"status\":\"ok\"}"));
//!
//! // A served query returns the same answer bytes as a direct engine
//! // run (`stats.elapsed_us` is wall time, so whole bodies differ).
//! use uxm_core::json::Json;
//! let query = Query::ptq(TwigPattern::parse("PO//ContactName").unwrap());
//! let (status, body) = client.query("orders", &query).unwrap();
//! assert_eq!(status, 200);
//! let served = Json::parse(&body).unwrap();
//! let direct = engine.run(&query).unwrap().to_json();
//! assert_eq!(
//!     served.get("answers").unwrap().to_string(),
//!     direct.get("answers").unwrap().to_string(),
//! );
//!
//! handle.shutdown(); // graceful: in-flight requests complete first
//! ```

#![deny(missing_docs)]

use crate::api::Query;
use crate::error::UxmError;
use crate::json::Json;
use crate::planner::Evaluator;
use crate::registry::{BatchQuery, EngineRegistry};
use crate::sync;
use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

// ---------------------------------------------------------------------
// configuration

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads draining the connection queue; `0` means
    /// `available_parallelism`.
    pub workers: usize,
    /// Largest accepted request body, in bytes; beyond it the request is
    /// rejected with HTTP 413 and the connection closes. Default 1 MiB.
    pub max_body_bytes: usize,
    /// Connections the accept loop may queue ahead of the workers.
    /// Arrivals beyond this depth are **shed**: answered inline with a
    /// typed 503 (`kind":"overloaded"`, `Retry-After` set) and closed,
    /// instead of blocking the accept loop — under overload the server
    /// stays responsive and tells clients to back off. Default 1024.
    pub queue_depth: usize,
    /// How long a worker waits on a persistent connection — for the next
    /// request to *start*, and for a started request to finish arriving —
    /// before closing it. Bounds worker occupancy: idle keep-alive
    /// clients (and slow-loris senders) release their worker after this
    /// long instead of pinning it forever. Default 5 s.
    pub keep_alive_timeout: Duration,
    /// Per-client fairness: the most connections one peer IP may hold
    /// (queued plus being served) before its next connection is shed
    /// with a typed 429 (`"kind":"rate-limited"`, `Retry-After` set).
    /// Keeps one hot client from occupying the whole queue and starving
    /// everyone else. `0` disables the cap. Default 256.
    pub max_conns_per_client: usize,
    /// The back-off hint carried in `Retry-After` headers (rounded up
    /// to whole seconds on the wire) and in shed error bodies.
    /// Default 250 ms.
    pub retry_after_ms: u64,
    /// Test instrumentation: when set, `POST /debug/panic` panics inside
    /// the request handler. The panic is contained (answered with a
    /// typed 500, worker and locks keep serving) — this route exists so
    /// tests and the soak harness can prove that. Off by default and
    /// never enabled by `uxm serve`.
    pub debug_panic_route: bool,
    /// Trust the `x-uxm-client` request header as the client identity
    /// for the per-client cap. Meant **only** for servers reached
    /// exclusively through a trusted hop — the router's internal shard
    /// servers, whose TCP peer is always the router on loopback. When
    /// set, connections are not capped at accept time (the identity
    /// arrives with the first request); instead each request re-binds
    /// the connection's per-client slot to the forwarded identity, and
    /// an identity already holding [`ServerConfig::max_conns_per_client`]
    /// slots is answered with a typed 429. Never enable it on a server
    /// that untrusted clients can reach directly: the header is
    /// client-controlled there. Default `false`.
    pub trust_forwarded_client: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 0,
            max_body_bytes: 1 << 20,
            queue_depth: 1024,
            keep_alive_timeout: Duration::from_secs(5),
            max_conns_per_client: 256,
            retry_after_ms: 250,
            debug_panic_route: false,
            trust_forwarded_client: false,
        }
    }
}

impl ServerConfig {
    /// The worker count actually spawned: `workers`, with `0` resolving
    /// to `available_parallelism` (what `uxm serve` reports at startup).
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1)
    }
}

// ---------------------------------------------------------------------
// statistics

/// Bucket `i` of the latency histogram counts evaluations with
/// `elapsed_us < 2^(i+1)`; the last bucket is unbounded. 26 buckets
/// cover 2 µs … ~67 s.
const LATENCY_BUCKETS: usize = 26;

/// A fixed-bucket (powers-of-two) latency histogram with lock-free
/// recording; percentiles are read back as the upper bound of the
/// bucket holding the requested rank, clamped to the observed maximum.
struct Latency {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    max_us: AtomicU64,
}

impl Latency {
    fn new() -> Latency {
        Latency {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    fn record(&self, us: u64) {
        let bucket = (63 - us.max(1).leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// The `pct`-th percentile in microseconds (0 when nothing recorded).
    fn percentile(&self, pct: f64) -> u64 {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return 0;
        }
        let target = (((pct / 100.0) * count as f64).ceil() as u64).clamp(1, count);
        let max = self.max_us.load(Ordering::Relaxed);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= target {
                let upper = if i + 1 >= LATENCY_BUCKETS {
                    u64::MAX
                } else {
                    1u64 << (i + 1)
                };
                return upper.min(max);
            }
        }
        max
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "count".into(),
                Json::uint(self.count.load(Ordering::Relaxed)),
            ),
            (
                "max".into(),
                Json::uint(self.max_us.load(Ordering::Relaxed)),
            ),
            ("p50".into(), Json::uint(self.percentile(50.0))),
            ("p90".into(), Json::uint(self.percentile(90.0))),
            ("p99".into(), Json::uint(self.percentile(99.0))),
        ])
    }
}

/// Per-engine aggregates behind `GET /stats`.
struct EngineCounters {
    requests: AtomicU64,
    errors: AtomicU64,
    plans_naive: AtomicU64,
    plans_block_tree: AtomicU64,
    plans_compiled: AtomicU64,
    /// The backend that actually executed (`ExecStats::backend`), which
    /// is the planned evaluator after the `UXM_EXEC` toggle resolves.
    backends_naive: AtomicU64,
    backends_block_tree: AtomicU64,
    backends_compiled: AtomicU64,
    program_cache_hits: AtomicU64,
    program_cache_misses: AtomicU64,
    rewrite_hits: AtomicU64,
    rewrite_misses: AtomicU64,
    /// Engine evaluation time per request ([`crate::api::ExecStats`]'
    /// `elapsed_us`), so the histogram measures serving work, not
    /// socket weather.
    latency: Latency,
}

impl EngineCounters {
    fn new() -> EngineCounters {
        EngineCounters {
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            plans_naive: AtomicU64::new(0),
            plans_block_tree: AtomicU64::new(0),
            plans_compiled: AtomicU64::new(0),
            backends_naive: AtomicU64::new(0),
            backends_block_tree: AtomicU64::new(0),
            backends_compiled: AtomicU64::new(0),
            program_cache_hits: AtomicU64::new(0),
            program_cache_misses: AtomicU64::new(0),
            rewrite_hits: AtomicU64::new(0),
            rewrite_misses: AtomicU64::new(0),
            latency: Latency::new(),
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            (
                "backends".into(),
                Json::Obj(vec![
                    (
                        "block-tree".into(),
                        Json::uint(self.backends_block_tree.load(Ordering::Relaxed)),
                    ),
                    (
                        "compiled".into(),
                        Json::uint(self.backends_compiled.load(Ordering::Relaxed)),
                    ),
                    (
                        "naive".into(),
                        Json::uint(self.backends_naive.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "errors".into(),
                Json::uint(self.errors.load(Ordering::Relaxed)),
            ),
            ("latency_us".into(), self.latency.to_json()),
            (
                "plans".into(),
                Json::Obj(vec![
                    (
                        "block-tree".into(),
                        Json::uint(self.plans_block_tree.load(Ordering::Relaxed)),
                    ),
                    (
                        "compiled".into(),
                        Json::uint(self.plans_compiled.load(Ordering::Relaxed)),
                    ),
                    (
                        "naive".into(),
                        Json::uint(self.plans_naive.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "program_cache".into(),
                Json::Obj(vec![
                    (
                        "hits".into(),
                        Json::uint(self.program_cache_hits.load(Ordering::Relaxed)),
                    ),
                    (
                        "misses".into(),
                        Json::uint(self.program_cache_misses.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "requests".into(),
                Json::uint(self.requests.load(Ordering::Relaxed)),
            ),
            (
                "rewrite_hits".into(),
                Json::uint(self.rewrite_hits.load(Ordering::Relaxed)),
            ),
            (
                "rewrite_misses".into(),
                Json::uint(self.rewrite_misses.load(Ordering::Relaxed)),
            ),
        ])
    }
}

/// Server-wide counters plus the per-engine map. Engines enter the map
/// on their first *successfully resolved* request — requests naming
/// unknown engines only count server-wide, so garbage names cannot grow
/// the map without bound.
pub(crate) struct ServerStats {
    connections: AtomicU64,
    requests: AtomicU64,
    http_errors: AtomicU64,
    /// Connections shed with 503 because the queue was full.
    shed_queue_full: AtomicU64,
    /// Connections shed with 429 because one client held too many.
    shed_per_client: AtomicU64,
    /// Request-handler panics contained (answered 500, worker kept).
    panics_contained: AtomicU64,
    engines: RwLock<HashMap<String, Arc<EngineCounters>>>,
}

impl ServerStats {
    fn new() -> ServerStats {
        ServerStats {
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            http_errors: AtomicU64::new(0),
            shed_queue_full: AtomicU64::new(0),
            shed_per_client: AtomicU64::new(0),
            panics_contained: AtomicU64::new(0),
            engines: RwLock::new(HashMap::new()),
        }
    }

    fn engine(&self, name: &str) -> Arc<EngineCounters> {
        if let Some(c) = sync::read(&self.engines).get(name) {
            return Arc::clone(c);
        }
        let mut map = sync::write(&self.engines);
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(EngineCounters::new())),
        )
    }

    /// Records one resolved request's outcome under `name`.
    fn record(&self, name: &str, outcome: &Result<crate::api::QueryResponse, UxmError>) {
        let c = self.engine(name);
        c.requests.fetch_add(1, Ordering::Relaxed);
        match outcome {
            Ok(response) => {
                match response.stats.plan.evaluator {
                    Evaluator::Naive => c.plans_naive.fetch_add(1, Ordering::Relaxed),
                    Evaluator::BlockTree => c.plans_block_tree.fetch_add(1, Ordering::Relaxed),
                    Evaluator::Compiled => c.plans_compiled.fetch_add(1, Ordering::Relaxed),
                };
                match response.stats.backend {
                    Evaluator::Naive => c.backends_naive.fetch_add(1, Ordering::Relaxed),
                    Evaluator::BlockTree => c.backends_block_tree.fetch_add(1, Ordering::Relaxed),
                    Evaluator::Compiled => c.backends_compiled.fetch_add(1, Ordering::Relaxed),
                };
                c.program_cache_hits
                    .fetch_add(response.stats.program_cache_hits, Ordering::Relaxed);
                c.program_cache_misses
                    .fetch_add(response.stats.program_cache_misses, Ordering::Relaxed);
                c.rewrite_hits
                    .fetch_add(response.stats.rewrite_hits, Ordering::Relaxed);
                c.rewrite_misses
                    .fetch_add(response.stats.rewrite_misses, Ordering::Relaxed);
                c.latency.record(response.stats.elapsed_us);
            }
            Err(_) => {
                c.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    pub(crate) fn to_json(&self) -> Json {
        let map = sync::read(&self.engines);
        let mut names: Vec<&String> = map.keys().collect();
        names.sort();
        let engines = names
            .into_iter()
            .map(|n| (n.clone(), map[n].to_json()))
            .collect();
        Json::Obj(vec![
            ("engines".into(), Json::Obj(engines)),
            (
                "server".into(),
                Json::Obj(vec![
                    (
                        "connections".into(),
                        Json::uint(self.connections.load(Ordering::Relaxed)),
                    ),
                    (
                        "http_errors".into(),
                        Json::uint(self.http_errors.load(Ordering::Relaxed)),
                    ),
                    (
                        "panics_contained".into(),
                        Json::uint(self.panics_contained.load(Ordering::Relaxed)),
                    ),
                    (
                        "requests".into(),
                        Json::uint(self.requests.load(Ordering::Relaxed)),
                    ),
                    (
                        "shed_per_client".into(),
                        Json::uint(self.shed_per_client.load(Ordering::Relaxed)),
                    ),
                    (
                        "shed_queue_full".into(),
                        Json::uint(self.shed_queue_full.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
        ])
    }
}

// ---------------------------------------------------------------------
// the server

/// The connection queue between the accept loop and the workers. Each
/// entry remembers the peer IP so the per-client connection count can
/// be released when the worker finishes with it.
struct Queue {
    conns: VecDeque<(TcpStream, Option<IpAddr>)>,
    /// Set once the accept loop exits; workers drain what is queued,
    /// then stop.
    closed: bool,
}

/// The routing half of a server: maps one parsed request to a status
/// and a canonical-JSON body. The registry server
/// ([`RegistryHandler`]) and the shard router
/// ([`crate::router::Router`]) plug into the same serving shell
/// (accept loop, worker pool, admission control, panic containment)
/// through this trait. `client` is the connection's accounting
/// identity — the TCP peer, or the forwarded identity after a re-bind —
/// which the router forwards on its internal hop.
pub(crate) trait Handler: Send + Sync + 'static {
    /// Routes one request.
    fn handle(
        &self,
        stats: &ServerStats,
        config: &ServerConfig,
        client: Option<IpAddr>,
        request: &Request,
    ) -> (u16, String);
}

struct Shared {
    handler: Arc<dyn Handler>,
    config: ServerConfig,
    stats: ServerStats,
    queue: Mutex<Queue>,
    /// Signals workers that a connection (or closure) is available.
    available: Condvar,
    /// Live (queued + serving) connection count per peer IP, for the
    /// per-client fairness cap.
    clients: Mutex<HashMap<IpAddr, u64>>,
    shutdown: AtomicBool,
}

/// A bound-but-not-yet-serving server: the socket is listening (so
/// [`Server::local_addr`] is final and clients may already connect and
/// queue in the OS backlog), but no thread runs until [`Server::start`].
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// A running server; dropping the handle **without** calling
/// [`ServerHandle::shutdown`] detaches the threads (they keep serving
/// until the process exits — what `uxm serve` wants).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral test port)
    /// over `registry`. The registry is shared — inserts, saves, and
    /// evictions made elsewhere are visible to the server immediately.
    pub fn bind(
        registry: Arc<EngineRegistry>,
        addr: impl ToSocketAddrs + std::fmt::Display,
        config: ServerConfig,
    ) -> Result<Server, UxmError> {
        Server::bind_handler(Arc::new(RegistryHandler { registry }), addr, config)
    }

    /// [`Server::bind`] over any [`Handler`] — how the router reuses
    /// the serving shell with its own routing.
    pub(crate) fn bind_handler(
        handler: Arc<dyn Handler>,
        addr: impl ToSocketAddrs + std::fmt::Display,
        config: ServerConfig,
    ) -> Result<Server, UxmError> {
        let listener = TcpListener::bind(&addr).map_err(|e| UxmError::io(&addr, e))?;
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                handler,
                config,
                stats: ServerStats::new(),
                queue: Mutex::new(Queue {
                    conns: VecDeque::new(),
                    closed: false,
                }),
                available: Condvar::new(),
                clients: Mutex::new(HashMap::new()),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address — the real port when `addr` asked for `:0`.
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener")
    }

    /// Spawns the accept loop and the worker pool and returns the
    /// running server's handle.
    pub fn start(self) -> ServerHandle {
        let addr = self.local_addr();
        let workers = (0..self.shared.config.effective_workers())
            .map(|i| {
                let shared = Arc::clone(&self.shared);
                std::thread::Builder::new()
                    .name(format!("uxm-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker")
            })
            .collect();
        let shared = Arc::clone(&self.shared);
        let listener = self.listener;
        let accept = std::thread::Builder::new()
            .name("uxm-accept".into())
            .spawn(move || accept_loop(&listener, &shared))
            .expect("spawn accept loop");
        ServerHandle {
            addr,
            shared: self.shared,
            accept,
            workers,
        }
    }
}

impl ServerHandle {
    /// The address the server answers on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server stops (which, short of
    /// [`ServerHandle::shutdown`] from another thread, is never) —
    /// `uxm serve`'s foreground mode.
    pub fn wait(self) {
        let _ = self.accept.join();
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// Graceful stop: the listener closes, queued connections are
    /// drained, in-flight requests run to completion and their
    /// responses are written (with `Connection: close`) before the
    /// workers exit.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.accept.join();
        for w in self.workers {
            let _ = w.join();
        }
    }
}

/// Writes a typed shed response (429/503 with `Retry-After`) straight
/// from the accept loop and closes the connection. A short write
/// timeout keeps a non-reading peer from stalling accepts.
fn shed(shared: &Shared, mut stream: TcpStream, status: u16, error: &UxmError) {
    stream.set_nodelay(true).ok();
    stream
        .set_write_timeout(Some(Duration::from_millis(250)))
        .ok();
    shared.stats.http_errors.fetch_add(1, Ordering::Relaxed);
    let _ = write_response_with(
        &mut stream,
        status,
        &error_body(error),
        false,
        Some(shared.config.retry_after_ms),
    );
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        let conn = listener.accept();
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok((stream, peer)) = conn else {
            // Persistent accept failures (e.g. EMFILE under fd
            // exhaustion) must not hot-loop the accept thread; back off
            // a tick so the workers can drain and release descriptors.
            std::thread::sleep(READ_TICK);
            continue;
        };
        shared.stats.connections.fetch_add(1, Ordering::Relaxed);
        // Behind a trusted hop the TCP peer is always the router on
        // loopback; the real identity arrives per request in
        // `x-uxm-client`, so the cap is enforced at request time
        // (see `serve_connection`) instead of here.
        let ip = if shared.config.trust_forwarded_client {
            None
        } else {
            Some(peer.ip())
        };

        // Per-client fairness: one peer holding its cap's worth of
        // connections gets 429s, not more of the queue.
        let cap = shared.config.max_conns_per_client;
        if cap > 0 && ip.is_some() && !try_acquire_client(shared, peer.ip()) {
            shared.stats.shed_per_client.fetch_add(1, Ordering::Relaxed);
            shed(
                shared,
                stream,
                429,
                &UxmError::RateLimited {
                    reason: format!("client holds {cap} connections (the per-client cap)"),
                    retry_after_ms: shared.config.retry_after_ms,
                },
            );
            continue;
        }

        // Load shedding: a full queue answers 503 immediately instead of
        // blocking the accept loop until a worker frees space — overload
        // degrades into fast typed refusals, never an unbounded backlog.
        let mut queue = sync::lock(&shared.queue);
        if queue.conns.len() >= shared.config.queue_depth {
            drop(queue);
            release_client(shared, ip);
            shared.stats.shed_queue_full.fetch_add(1, Ordering::Relaxed);
            shed(
                shared,
                stream,
                503,
                &UxmError::Overloaded {
                    reason: format!(
                        "connection queue full ({} waiting)",
                        shared.config.queue_depth
                    ),
                    retry_after_ms: shared.config.retry_after_ms,
                },
            );
            continue;
        }
        queue.conns.push_back((stream, ip));
        drop(queue);
        shared.available.notify_one();
    }
    let mut queue = sync::lock(&shared.queue);
    queue.closed = true;
    drop(queue);
    shared.available.notify_all();
}

/// Takes one unit of `ip`'s per-client connection count; `false` means
/// the client is at its cap and the connection must be shed.
fn try_acquire_client(shared: &Shared, ip: IpAddr) -> bool {
    let cap = shared.config.max_conns_per_client;
    if cap == 0 {
        return true;
    }
    let mut clients = sync::lock(&shared.clients);
    let held = clients.entry(ip).or_insert(0);
    if *held >= cap as u64 {
        return false;
    }
    *held += 1;
    true
}

/// Releases one unit of `ip`'s per-client connection count.
fn release_client(shared: &Shared, ip: Option<IpAddr>) {
    let Some(ip) = ip else { return };
    if shared.config.max_conns_per_client == 0 {
        return;
    }
    let mut clients = sync::lock(&shared.clients);
    if let Some(held) = clients.get_mut(&ip) {
        *held = held.saturating_sub(1);
        if *held == 0 {
            clients.remove(&ip);
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let next = {
            let mut queue = sync::lock(&shared.queue);
            loop {
                if let Some(entry) = queue.conns.pop_front() {
                    break Some(entry);
                }
                if queue.closed {
                    break None;
                }
                queue = shared
                    .available
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        match next {
            Some((stream, ip)) => {
                // A panic anywhere in connection handling is contained
                // to this one connection: the worker survives, and the
                // per-client count is released either way. The slot may
                // have been re-bound to a forwarded identity mid-
                // connection, so the release uses the identity the
                // connection last held.
                let mut ip = ip;
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let _ = serve_connection(shared, stream, &mut ip);
                }));
                release_client(shared, ip);
                if result.is_err() {
                    shared
                        .stats
                        .panics_contained
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            None => return,
        }
    }
}

// ---------------------------------------------------------------------
// one connection

/// How long a blocked read sleeps before re-checking the shutdown flag.
const READ_TICK: Duration = Duration::from_millis(25);

/// One parsed HTTP request, as the [`Handler`] sees it.
pub(crate) struct Request {
    pub(crate) method: String,
    pub(crate) path: String,
    pub(crate) body: String,
    keep_alive: bool,
    /// The `x-uxm-client` header, when present and a valid IP. Only
    /// honored when [`ServerConfig::trust_forwarded_client`] is set.
    forwarded_client: Option<IpAddr>,
}

enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// The peer closed (or shutdown arrived while idle): close quietly.
    Closed,
    /// Protocol trouble: respond with this status/error, then close.
    Reject(u16, UxmError),
}

/// Serves one connection. `account` is the identity currently holding
/// this connection's per-client slot: the TCP peer on a normal server,
/// or (behind a trusted hop) the forwarded identity of the most recent
/// request — the worker releases whatever it holds on exit.
fn serve_connection(
    shared: &Shared,
    stream: TcpStream,
    account: &mut Option<IpAddr>,
) -> std::io::Result<()> {
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(READ_TICK)).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    loop {
        // One budget covers both waiting for the next request to start
        // and receiving it in full, so neither an idle keep-alive peer
        // nor a slow sender can pin this worker past the timeout.
        let deadline = std::time::Instant::now() + shared.config.keep_alive_timeout;
        let request = match read_request(shared, &mut reader, deadline) {
            Ok(ReadOutcome::Request(r)) => r,
            Ok(ReadOutcome::Closed) | Err(_) => return Ok(()),
            Ok(ReadOutcome::Reject(status, error)) => {
                shared.stats.http_errors.fetch_add(1, Ordering::Relaxed);
                write_response(&mut writer, status, &error_body(&error), false)?;
                return Ok(());
            }
        };
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        // Behind a trusted hop, re-bind this connection's per-client
        // slot to the forwarded identity so the cap (and its 429s)
        // keeps naming the real client, not the loopback hop.
        if shared.config.trust_forwarded_client && shared.config.max_conns_per_client > 0 {
            if let Some(fwd) = request.forwarded_client {
                if *account != Some(fwd) {
                    if try_acquire_client(shared, fwd) {
                        release_client(shared, *account);
                        *account = Some(fwd);
                    } else {
                        let cap = shared.config.max_conns_per_client;
                        shared.stats.shed_per_client.fetch_add(1, Ordering::Relaxed);
                        shared.stats.http_errors.fetch_add(1, Ordering::Relaxed);
                        let e = UxmError::RateLimited {
                            reason: format!(
                                "client {fwd} holds {cap} connections (the per-client cap)"
                            ),
                            retry_after_ms: shared.config.retry_after_ms,
                        };
                        write_response_with(
                            &mut writer,
                            429,
                            &error_body(&e),
                            false,
                            Some(shared.config.retry_after_ms),
                        )?;
                        return Ok(());
                    }
                }
            }
        }
        let mut keep_alive = request.keep_alive && !shared.shutdown.load(Ordering::SeqCst);
        // A handler panic is contained to this one request: the worker
        // answers a typed 500 and keeps serving (the shared locks are
        // poison-tolerant, so other workers never notice).
        let client = *account;
        let (status, body) = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            route(shared, client, &request)
        })) {
            Ok(answer) => answer,
            Err(panic) => {
                shared
                    .stats
                    .panics_contained
                    .fetch_add(1, Ordering::Relaxed);
                keep_alive = false;
                let msg = panic_message(&panic);
                let e = UxmError::Internal(format!("request handler panicked: {msg}"));
                (500, error_body(&e))
            }
        };
        if status >= 400 {
            shared.stats.http_errors.fetch_add(1, Ordering::Relaxed);
        }
        let retry_after = matches!(status, 429 | 503).then_some(shared.config.retry_after_ms);
        write_response_with(&mut writer, status, &body, keep_alive, retry_after)?;
        if !keep_alive {
            return Ok(());
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = panic.downcast_ref::<&str>() {
        s
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Reads one line, retrying on read-timeout ticks until `shutdown` or
/// `deadline` (the partial line survives across retries because
/// `read_line` appends).
fn read_line_patient(
    shared: &Shared,
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
    deadline: std::time::Instant,
) -> std::io::Result<usize> {
    loop {
        match reader.read_line(line) {
            Ok(n) => return Ok(n),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutdown.load(Ordering::SeqCst) || std::time::Instant::now() >= deadline {
                    return Err(e);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

fn read_request(
    shared: &Shared,
    reader: &mut BufReader<TcpStream>,
    deadline: std::time::Instant,
) -> std::io::Result<ReadOutcome> {
    // Wait for the first byte of a request without consuming anything,
    // so an idle keep-alive connection can notice shutdown (or run out
    // its keep-alive budget and free this worker) and close.
    loop {
        match reader.fill_buf() {
            Ok([]) => return Ok(ReadOutcome::Closed),
            Ok(_) => break,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shared.shutdown.load(Ordering::SeqCst) || std::time::Instant::now() >= deadline {
                    return Ok(ReadOutcome::Closed);
                }
            }
            Err(e) => return Err(e),
        }
    }

    let reject = |status: u16, msg: String| Ok(ReadOutcome::Reject(status, UxmError::Usage(msg)));

    let mut line = String::new();
    if read_line_patient(shared, reader, &mut line, deadline)? == 0 {
        return Ok(ReadOutcome::Closed);
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return reject(400, format!("malformed request line {:?}", line.trim_end()));
    };
    if !version.starts_with("HTTP/1.") {
        return reject(400, format!("unsupported protocol {version:?}"));
    }
    let (method, path) = (method.to_string(), path.to_string());
    // HTTP/1.1 defaults to persistent connections; 1.0 to close.
    let mut keep_alive = version != "HTTP/1.0";

    let mut content_length: Option<usize> = None;
    let mut forwarded_client: Option<IpAddr> = None;
    for _ in 0..100 {
        let mut header = String::new();
        if read_line_patient(shared, reader, &mut header, deadline)? == 0 {
            return Ok(ReadOutcome::Closed);
        }
        let header = header.trim_end();
        if header.is_empty() {
            let body = match content_length {
                None | Some(0) => String::new(),
                Some(len) if len > shared.config.max_body_bytes => {
                    return reject(
                        413,
                        format!(
                            "body of {len} bytes exceeds the {}-byte limit",
                            shared.config.max_body_bytes
                        ),
                    );
                }
                Some(len) => {
                    let mut buf = vec![0u8; len];
                    let mut filled = 0;
                    while filled < len {
                        if std::time::Instant::now() >= deadline {
                            return Ok(ReadOutcome::Closed);
                        }
                        match reader.read(&mut buf[filled..]) {
                            Ok(0) => return Ok(ReadOutcome::Closed),
                            Ok(n) => filled += n,
                            Err(e)
                                if matches!(
                                    e.kind(),
                                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                                ) =>
                            {
                                if shared.shutdown.load(Ordering::SeqCst) {
                                    return Ok(ReadOutcome::Closed);
                                }
                            }
                            Err(e) => return Err(e),
                        }
                    }
                    match String::from_utf8(buf) {
                        Ok(s) => s,
                        Err(_) => return reject(400, "body is not valid UTF-8".into()),
                    }
                }
            };
            return Ok(ReadOutcome::Request(Request {
                method,
                path,
                body,
                keep_alive,
                forwarded_client,
            }));
        }
        let Some((name, value)) = header.split_once(':') else {
            return reject(400, format!("malformed header {header:?}"));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            match value.parse::<usize>() {
                Ok(len) => content_length = Some(len),
                Err(_) => return reject(400, format!("bad content-length {value:?}")),
            }
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                keep_alive = true;
            }
        } else if name.eq_ignore_ascii_case("x-uxm-client") {
            // Unparsable values are ignored, not rejected: the header
            // only means anything on trusted internal servers.
            forwarded_client = value.parse().ok();
        }
    }
    reject(400, "too many headers".into())
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "",
    }
}

fn write_response(
    writer: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_with(writer, status, body, keep_alive, None)
}

/// [`write_response`] plus an optional `Retry-After` header (the HTTP
/// header is whole seconds, so the hint rounds up — never to zero).
fn write_response_with(
    writer: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
    retry_after_ms: Option<u64>,
) -> std::io::Result<()> {
    let retry_after = match retry_after_ms {
        Some(ms) => format!("retry-after: {}\r\n", ms.div_ceil(1000).max(1)),
        None => String::new(),
    };
    let head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-length: {}\r\ncontent-type: application/json\r\n{retry_after}connection: {}\r\n\r\n",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    writer.write_all(head.as_bytes())?;
    writer.write_all(body.as_bytes())?;
    writer.flush()
}

// ---------------------------------------------------------------------
// routing

/// The canonical error body: `{"error":{"kind":…,"message":…}}`.
pub(crate) fn error_body(e: &UxmError) -> String {
    Json::Obj(vec![(
        "error".into(),
        Json::Obj(vec![
            ("kind".into(), Json::str(e.kind())),
            ("message".into(), Json::str(e.to_string())),
        ]),
    )])
    .to_string()
}

/// The HTTP status carrying `e`: bad inputs are the client's fault
/// (400), unknown names are absences (404), storage/I-O trouble is the
/// server's (500).
pub(crate) fn status_for(e: &UxmError) -> u16 {
    match e {
        UxmError::UnknownEngine(_) => 404,
        UxmError::RateLimited { .. } => 429,
        UxmError::Decode(_)
        | UxmError::Io(_)
        | UxmError::Input(_)
        | UxmError::Internal(_)
        | UxmError::NoSnapshotDir => 500,
        UxmError::Overloaded { .. } | UxmError::ShardUnavailable { .. } => 503,
        _ => 400,
    }
}

/// Generic dispatch: the routes every server kind answers itself
/// (`/healthz`, the debug panic hook), then the bound [`Handler`].
fn route(shared: &Shared, client: Option<IpAddr>, request: &Request) -> (u16, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (200, "{\"status\":\"ok\"}".into()),
        ("POST", "/debug/panic") if shared.config.debug_panic_route => {
            panic!("debug panic route")
        }
        _ => shared
            .handler
            .handle(&shared.stats, &shared.config, client, request),
    }
}

/// The single-registry routing behind [`Server::bind`]: every route of
/// the module-level table over one [`EngineRegistry`].
pub(crate) struct RegistryHandler {
    pub(crate) registry: Arc<EngineRegistry>,
}

impl Handler for RegistryHandler {
    fn handle(
        &self,
        stats: &ServerStats,
        _config: &ServerConfig,
        _client: Option<IpAddr>,
        request: &Request,
    ) -> (u16, String) {
        let done = |r: Result<String, UxmError>| match r {
            Ok(body) => (200, body),
            Err(e) => (status_for(&e), error_body(&e)),
        };
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/engines") => (200, engines_body(&self.registry)),
            ("GET", "/stats") => (200, stats_body(&self.registry, stats)),
            ("POST", "/batch") => done(handle_batch(&self.registry, stats, &request.body)),
            ("POST", "/topk") => done(crate::router::topk_over_registry(
                &self.registry,
                &request.body,
            )),
            ("POST", "/aggregate") => done(crate::router::aggregate_over_registry(
                &self.registry,
                &request.body,
            )),
            ("POST", path) if path.starts_with("/query/") => {
                let name = &path["/query/".len()..];
                done(handle_query(&self.registry, stats, name, &request.body))
            }
            ("GET" | "POST", _) => {
                let e = UxmError::Usage(format!(
                    "no route {} {} (POST /query/<engine>, POST /batch, POST /topk, \
                     POST /aggregate, GET /engines|/stats|/healthz)",
                    request.method, request.path
                ));
                (404, error_body(&e))
            }
            (method, _) => {
                let e = UxmError::Usage(format!("method {method} not allowed"));
                (405, error_body(&e))
            }
        }
    }
}

/// `POST /query/<engine>`: one canonical-JSON [`Query`] in, one
/// [`crate::api::QueryResponse`] out — exactly what
/// [`QueryEngine::run`](crate::engine::QueryEngine::run) returned on
/// the serving engine, serialized canonically (so the `answers`
/// subtree is byte-identical to a direct run; the timing stats are
/// this run's own).
///
/// The body may additionally carry `"explain": true` — a serving-layer
/// envelope option, not part of the query wire format — which adds an
/// `"explain"` object (plan, planner inputs, compiled program listing;
/// see [`crate::exec::Explain`]) to the response.
fn handle_query(
    registry: &EngineRegistry,
    stats: &ServerStats,
    name: &str,
    body: &str,
) -> Result<String, UxmError> {
    if name.is_empty() {
        return Err(UxmError::UnknownEngine(String::new()));
    }
    // Strip the envelope option before the strict query parser (which
    // rejects unknown members) sees the object.
    let mut parsed = Json::parse(body)?;
    let explain = match &mut parsed {
        Json::Obj(members) => match members.iter().position(|(k, _)| k == "explain") {
            None => false,
            Some(i) => match members.remove(i).1 {
                Json::Bool(b) => b,
                other => {
                    return Err(UxmError::Json(format!(
                        "explain must be a boolean, got {other}"
                    )))
                }
            },
        },
        _ => false,
    };
    let query = Query::from_json(&parsed)?;
    let engine = registry.fetch(name)?;
    let outcome = engine.run(&query);
    stats.record(name, &outcome);
    let response = outcome?;
    if !explain {
        return Ok(response.to_json_string());
    }
    let explanation = engine.explain(&query)?;
    let Json::Obj(mut members) = response.to_json() else {
        unreachable!("QueryResponse::to_json is an object");
    };
    // Keys stay alphabetical: answers < explain < stats.
    members.insert(1, ("explain".into(), explanation.to_json()));
    Ok(Json::Obj(members).to_string())
}

/// `POST /batch`: a JSON array of `{"engine":…,"query":…}` objects in,
/// `{"results":[…]}` out — per entry either a response object or an
/// `{"error":…}` object, in request order (exactly what
/// [`EngineRegistry::batch`] returns).
fn handle_batch(
    registry: &EngineRegistry,
    stats: &ServerStats,
    body: &str,
) -> Result<String, UxmError> {
    let parsed = Json::parse(body)?;
    let items = parsed
        .as_arr()
        .ok_or_else(|| UxmError::Json("batch body must be a JSON array".into()))?;
    let queries = items
        .iter()
        .map(BatchQuery::from_json)
        .collect::<Result<Vec<_>, _>>()?;
    let answers = registry.batch(&queries);
    let results = queries
        .iter()
        .zip(&answers)
        .map(|(q, outcome)| {
            // Unknown-engine failures stay server-level (see ServerStats).
            if !matches!(outcome, Err(UxmError::UnknownEngine(_))) {
                stats.record(&q.engine, outcome);
            }
            match outcome {
                Ok(response) => response.to_json(),
                Err(e) => Json::Obj(vec![(
                    "error".into(),
                    Json::Obj(vec![
                        ("kind".into(), Json::str(e.kind())),
                        ("message".into(), Json::str(e.to_string())),
                    ]),
                )]),
            }
        })
        .collect();
    Ok(Json::Obj(vec![("results".into(), Json::Arr(results))]).to_string())
}

/// `GET /engines`: resident engines with sizes, plus what could be
/// hydrated from the snapshot directory.
fn engines_body(registry: &EngineRegistry) -> String {
    let resident = registry.resident();
    let resident_names: Vec<&str> = resident.iter().map(|(n, _)| n.as_str()).collect();
    let mut entries: Vec<Json> = resident
        .iter()
        .map(|(name, bytes)| {
            Json::Obj(vec![
                ("approx_bytes".into(), Json::uint(*bytes as u64)),
                ("name".into(), Json::str(name)),
                ("resident".into(), Json::Bool(true)),
            ])
        })
        .collect();
    for name in registry.snapshot_names() {
        if !resident_names.contains(&name.as_str()) {
            entries.push(Json::Obj(vec![
                ("name".into(), Json::str(name)),
                ("resident".into(), Json::Bool(false)),
            ]));
        }
    }
    Json::Obj(vec![
        ("engines".into(), Json::Arr(entries)),
        ("evictions".into(), Json::uint(registry.eviction_count())),
        (
            "resident_bytes".into(),
            Json::uint(registry.resident_bytes() as u64),
        ),
        (
            "unreclaimed_bytes".into(),
            Json::uint(registry.unreclaimed_bytes() as u64),
        ),
    ])
    .to_string()
}

/// `GET /stats`: the per-engine and server-wide counters of
/// [`ServerStats`] plus a `"registry"` section with the memory
/// accounting of [`crate::registry::RegistryStats`] — including
/// `unreclaimed_bytes`, the drift between what the LRU budget thinks it
/// freed and what evicted-but-still-referenced engines actually hold —
/// and measured hydration telemetry: total `hydrations`,
/// `hydrate_p50_us` / `hydrate_max_us` wall times, and a per-engine
/// `engines` object (`last_us`, `count`, on-disk `snapshot_version`).
fn stats_body(registry: &EngineRegistry, stats: &ServerStats) -> String {
    let r = registry.stats();
    let hydrated: Vec<(String, Json)> = registry
        .hydration_stats()
        .into_iter()
        .map(|(name, h)| {
            (
                name,
                Json::Obj(vec![
                    ("count".into(), Json::uint(h.count)),
                    ("last_us".into(), Json::uint(h.last_us)),
                    ("snapshot_version".into(), Json::uint(h.snapshot_version)),
                ]),
            )
        })
        .collect();
    let registry_section = Json::Obj(vec![
        ("engines".into(), Json::Obj(hydrated)),
        ("evictions".into(), Json::uint(r.evictions)),
        ("hydrate_max_us".into(), Json::uint(r.hydrate_max_us)),
        ("hydrate_p50_us".into(), Json::uint(r.hydrate_p50_us)),
        ("hydrations".into(), Json::uint(r.hydrations)),
        (
            "memory_budget".into(),
            Json::uint(registry.memory_budget() as u64),
        ),
        ("resident_bytes".into(), Json::uint(r.resident_bytes as u64)),
        (
            "resident_engines".into(),
            Json::uint(r.resident_engines as u64),
        ),
        ("shed_hydrations".into(), Json::uint(r.shed_hydrations)),
        (
            "unreclaimed_bytes".into(),
            Json::uint(r.unreclaimed_bytes as u64),
        ),
    ]);
    let Json::Obj(mut members) = stats.to_json() else {
        unreachable!("ServerStats::to_json is an object");
    };
    // Keys stay alphabetical: engines < registry < server.
    members.insert(1, ("registry".into(), registry_section));
    Json::Obj(members).to_string()
}

// ---------------------------------------------------------------------
// the client

/// A minimal blocking HTTP/1.1 client speaking the server's protocol
/// over one persistent connection — the in-process test/bench helper
/// (and a worked example of the wire format).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    forward: Option<IpAddr>,
}

impl Client {
    /// Connects to a running [`Server`] with the default 30 s read
    /// deadline (see [`Client::read_timeout`]).
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Display) -> Result<Client, UxmError> {
        let stream = TcpStream::connect(&addr).map_err(|e| UxmError::io(&addr, e))?;
        stream.set_nodelay(true).ok();
        // Every read is deadline-bounded: a peer that stops sending
        // mid-response (headers or body bytes alike) fails the request
        // with a typed error instead of blocking this thread forever.
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .map_err(|e| UxmError::io(&addr, e))?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| UxmError::io(&addr, e))?);
        Ok(Client {
            reader,
            writer: stream,
            forward: None,
        })
    }

    /// Sets (or clears) the client identity to forward as an
    /// `x-uxm-client` header on every subsequent request. Servers
    /// ignore the header unless they run with
    /// [`ServerConfig::trust_forwarded_client`]; the router sets it on
    /// its internal hop so shard-side per-client 429s bind to the real
    /// client rather than the loopback hop.
    pub fn set_forward_client(&mut self, ip: Option<IpAddr>) {
        self.forward = ip;
    }

    /// Replaces the per-read deadline (default 30 s from
    /// [`Client::connect`]). A read stalled past it — including body
    /// bytes trickled by a slow peer — fails with [`UxmError::Io`]
    /// rather than pinning the calling thread indefinitely.
    pub fn read_timeout(self, timeout: Duration) -> Result<Client, UxmError> {
        self.reader
            .get_ref()
            .set_read_timeout(Some(timeout))
            .map_err(|e| UxmError::io("set_read_timeout", e))?;
        Ok(self)
    }

    /// Sends `GET path`; returns `(status, body)`.
    pub fn get(&mut self, path: &str) -> Result<(u16, String), UxmError> {
        self.request("GET", path, None)
    }

    /// Sends `POST path` with a JSON body; returns `(status, body)`.
    pub fn post(&mut self, path: &str, body: &str) -> Result<(u16, String), UxmError> {
        self.request("POST", path, Some(body))
    }

    /// Serializes `query` canonically and posts it to
    /// `/query/<engine>`.
    pub fn query(&mut self, engine: &str, query: &Query) -> Result<(u16, String), UxmError> {
        self.post(&format!("/query/{engine}"), &query.to_json_string())
    }

    /// Posts `requests` as one `/batch` call.
    pub fn batch(&mut self, requests: &[BatchQuery]) -> Result<(u16, String), UxmError> {
        let body = Json::Arr(requests.iter().map(BatchQuery::to_json).collect()).to_string();
        self.post("/batch", &body)
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<(u16, String), UxmError> {
        let io = |e: std::io::Error| UxmError::io(format!("{method} {path}"), e);
        let body = body.unwrap_or("");
        let forward = match self.forward {
            Some(ip) => format!("x-uxm-client: {ip}\r\n"),
            None => String::new(),
        };
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: uxm\r\n{forward}content-length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes()).map_err(io)?;
        self.writer.write_all(body.as_bytes()).map_err(io)?;
        self.writer.flush().map_err(io)?;

        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).map_err(io)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                UxmError::Io(format!(
                    "{method} {path}: malformed status line {:?}",
                    status_line.trim_end()
                ))
            })?;
        let mut content_length: Option<usize> = None;
        loop {
            let mut header = String::new();
            if self.reader.read_line(&mut header).map_err(io)? == 0 {
                return Err(UxmError::Io(format!(
                    "{method} {path}: connection closed mid-headers"
                )));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = Some(value.trim().parse().map_err(|_| {
                        UxmError::Io(format!("{method} {path}: bad content-length {value:?}"))
                    })?);
                }
            }
        }
        // A response without Content-Length must be an error, not an
        // empty body: this client frames bodies by length alone, so a
        // missing header means the response cannot be parsed.
        let content_length = content_length.ok_or_else(|| {
            UxmError::Io(format!("{method} {path}: response missing content-length"))
        })?;
        let mut buf = vec![0u8; content_length];
        self.reader.read_exact(&mut buf).map_err(io)?;
        String::from_utf8(buf)
            .map(|body| (status, body))
            .map_err(|_| UxmError::Io(format!("{method} {path}: non-UTF-8 body")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_histogram_percentiles() {
        let lat = Latency::new();
        assert_eq!(lat.percentile(50.0), 0, "empty histogram");
        for us in [1u64, 2, 3, 100, 1000, 100_000] {
            lat.record(us);
        }
        // p50 of 6 samples is the 3rd: bucket of 3 µs has upper bound 4.
        assert_eq!(lat.percentile(50.0), 4);
        // p99 lands in the last occupied bucket, clamped to the max seen.
        assert_eq!(lat.percentile(99.0), 100_000);
        assert_eq!(lat.percentile(100.0), 100_000);
    }

    #[test]
    fn latency_histogram_clamps_huge_values() {
        let lat = Latency::new();
        lat.record(u64::MAX);
        assert_eq!(lat.percentile(50.0), u64::MAX);
    }

    #[test]
    fn status_mapping_is_stable() {
        assert_eq!(status_for(&UxmError::UnknownEngine("x".into())), 404);
        assert_eq!(status_for(&UxmError::Json("bad".into())), 400);
        assert_eq!(status_for(&UxmError::Io("disk".into())), 500);
        assert_eq!(
            status_for(&UxmError::Decode(crate::storage::DecodeError::BadMagic)),
            500
        );
    }

    #[test]
    fn error_bodies_are_canonical_json() {
        let body = error_body(&UxmError::UnknownEngine("po".into()));
        assert_eq!(
            body,
            "{\"error\":{\"kind\":\"unknown-engine\",\"message\":\"no engine named \\\"po\\\"\"}}"
        );
        assert_eq!(Json::parse(&body).unwrap().to_string(), body);
    }
}
