//! The unified query API: one typed request/response surface from the
//! CLI down to the engine.
//!
//! Historically this crate grew three parallel query surfaces — the
//! legacy free functions (`ptq_basic`, `ptq_with_tree`, `topk_ptq`,
//! `keyword_query`, the `path_ptq` node variants), six overlapping
//! [`QueryEngine`](crate::engine::QueryEngine) methods, and the
//! registry's request enum — each with its own options handling and its
//! own error type. This module replaces all of them with:
//!
//! * a typed [`Query`] AST ([`Query::Ptq`], [`Query::PtqNodes`],
//!   [`Query::TopK`], [`Query::Keyword`], [`Query::Aggregate`]), each
//!   carrying a [`TwigPattern`] (or keyword terms) plus shared
//!   [`QueryOptions`] — probability threshold, answer granularity, and
//!   an [`EvaluatorHint`] for the [`crate::planner`]. Patterns may use
//!   descendant axes (`//`), wildcards (`*`), and value predicates
//!   (`[.='v']`, `[contains(.,'v')]`, `[.>=10]`, `[@attr='v']` — see
//!   `docs/query-language.md`);
//! * a uniform [`QueryResponse`]: [`Answer`]s with per-answer
//!   provenance (contributing [`MappingId`]s and the summed
//!   probability) plus an [`ExecStats`] block (plan chosen, cache hits,
//!   elapsed time);
//! * a canonical JSON wire format (see [`crate::json`]) — the same
//!   bytes whether they come from `uxm query --json`, a `uxm batch`
//!   file, or a registry batch. Serialization is *byte-stable*:
//!   `to_json_string` of a parsed query reproduces the input exactly
//!   (object keys are emitted alphabetically, patterns in the twig
//!   grammar's canonical rendering).
//!
//! # Examples
//!
//! The one entry point is
//! [`QueryEngine::run`](crate::engine::QueryEngine::run):
//!
//! ```
//! use uxm_core::api::{EvaluatorHint, Query};
//! use uxm_core::block_tree::BlockTreeConfig;
//! use uxm_core::engine::QueryEngine;
//! use uxm_core::mapping::PossibleMappings;
//! use uxm_matching::Matcher;
//! use uxm_twig::TwigPattern;
//! use uxm_xml::{DocGenConfig, Document, Schema};
//!
//! let source = Schema::parse_outline("Order(Buyer(Name) Item(Price))").unwrap();
//! let target = Schema::parse_outline("PO(Vendor(ContactName) Line(UnitPrice))").unwrap();
//! let matching = Matcher::default().match_schemas(&source, &target);
//! let pm = PossibleMappings::top_h(&matching, 8);
//! let doc = Document::generate(&source, &DocGenConfig::small(), 7);
//! let engine = QueryEngine::build(pm, doc, &BlockTreeConfig::default());
//!
//! let query = Query::ptq(TwigPattern::parse("PO//ContactName").unwrap());
//! let response = engine.run(&query).unwrap();
//! for answer in &response.answers {
//!     assert!(answer.probability > 0.0);
//!     assert!(!answer.mappings.is_empty(), "provenance is always present");
//! }
//! // The plan the engine chose is part of the response...
//! let auto_plan = response.stats.plan.evaluator;
//! // ...and pinning either evaluator returns identical answers.
//! let pinned = engine
//!     .run(&query.clone().with_evaluator(EvaluatorHint::Naive))
//!     .unwrap();
//! assert_eq!(response.answers, pinned.answers);
//! # let _ = auto_plan;
//! ```

use crate::aggregate::{AggFunc, AggregateResult};
use crate::error::UxmError;
use crate::json::Json;
use crate::keyword::{KeywordAnswer, KeywordError};
use crate::mapping::MappingId;
use crate::planner::{Evaluator, Plan};
use crate::ptq::PtqAnswer;
use std::fmt;
use uxm_twig::{TwigMatch, TwigPattern};
use uxm_xml::DocNodeId;

// ---------------------------------------------------------------------
// options

/// How answers are grouped in a [`QueryResponse`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Granularity {
    /// One answer per relevant mapping, in the evaluator's order (the
    /// paper's by-table shape; top-k orders by probability descending).
    #[default]
    Mapping,
    /// Identical match sets merged into one answer whose probability is
    /// the summed mass and whose provenance lists every contributing
    /// mapping — the "distinct answers" view of the paper's introduction
    /// example. Ordered by probability descending.
    Distinct,
}

impl Granularity {
    /// The kebab-case wire name.
    pub fn wire_name(self) -> &'static str {
        match self {
            Granularity::Mapping => "mapping",
            Granularity::Distinct => "distinct",
        }
    }
}

/// The caller's say over the [`crate::planner`]: pin an evaluator, or
/// let engine statistics decide.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvaluatorHint {
    /// Let the planner choose from `(|M|, block fan-out, cache warmth)`.
    #[default]
    Auto,
    /// Pin Algorithm 3 (per-mapping evaluation).
    Naive,
    /// Pin Algorithm 4 (block-tree evaluation).
    BlockTree,
    /// Pin the [`crate::exec`] compiled-program backend.
    Compiled,
}

impl EvaluatorHint {
    /// The kebab-case wire name.
    pub fn wire_name(self) -> &'static str {
        match self {
            EvaluatorHint::Auto => "auto",
            EvaluatorHint::Naive => "naive",
            EvaluatorHint::BlockTree => "block-tree",
            EvaluatorHint::Compiled => "compiled",
        }
    }
}

/// Options shared by every [`Query`] kind.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueryOptions {
    /// Answers with probability strictly below this are dropped from the
    /// response (applied after any [`Granularity::Distinct`]
    /// aggregation). Must be finite and within `[0, 1]`; default `0`.
    pub min_probability: f64,
    /// Answer grouping; default [`Granularity::Mapping`].
    pub granularity: Granularity,
    /// Evaluator choice; default [`EvaluatorHint::Auto`].
    pub evaluator: EvaluatorHint,
}

impl Default for QueryOptions {
    fn default() -> QueryOptions {
        QueryOptions {
            min_probability: 0.0,
            granularity: Granularity::Mapping,
            evaluator: EvaluatorHint::Auto,
        }
    }
}

impl QueryOptions {
    fn validate(&self) -> Result<(), UxmError> {
        if !self.min_probability.is_finite() || !(0.0..=1.0).contains(&self.min_probability) {
            return Err(UxmError::InvalidQuery(format!(
                "min_probability must be within [0, 1], got {}",
                self.min_probability
            )));
        }
        Ok(())
    }

    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("evaluator".into(), Json::str(self.evaluator.wire_name())),
            (
                "granularity".into(),
                Json::str(self.granularity.wire_name()),
            ),
            ("min_probability".into(), Json::Num(self.min_probability)),
        ])
    }

    fn from_json(v: &Json) -> Result<QueryOptions, UxmError> {
        let members = v
            .as_obj()
            .ok_or_else(|| UxmError::Json("options must be an object".into()))?;
        let mut options = QueryOptions::default();
        for (key, val) in members {
            match key.as_str() {
                "evaluator" => {
                    options.evaluator = match val.as_str() {
                        Some("auto") => EvaluatorHint::Auto,
                        Some("naive") => EvaluatorHint::Naive,
                        Some("block-tree") => EvaluatorHint::BlockTree,
                        Some("compiled") => EvaluatorHint::Compiled,
                        _ => {
                            return Err(UxmError::Json(format!(
                                "evaluator must be auto | naive | block-tree | compiled, got {val}"
                            )))
                        }
                    }
                }
                "granularity" => {
                    options.granularity = match val.as_str() {
                        Some("mapping") => Granularity::Mapping,
                        Some("distinct") => Granularity::Distinct,
                        _ => {
                            return Err(UxmError::Json(format!(
                                "granularity must be mapping | distinct, got {val}"
                            )))
                        }
                    }
                }
                "min_probability" => {
                    options.min_probability = val
                        .as_f64()
                        .ok_or_else(|| UxmError::Json("min_probability must be a number".into()))?
                }
                other => {
                    return Err(UxmError::Json(format!("unknown options key {other:?}")));
                }
            }
        }
        Ok(options)
    }
}

// ---------------------------------------------------------------------
// the query AST

/// A typed query — the single request shape every layer speaks.
///
/// Construct with [`Query::ptq`] / [`Query::ptq_nodes`] /
/// [`Query::topk`] / [`Query::keyword`] and refine with the builder
/// methods; evaluate with
/// [`QueryEngine::run`](crate::engine::QueryEngine::run).
#[derive(Clone, Debug, PartialEq)]
pub enum Query {
    /// A probabilistic twig query at label granularity (the paper's
    /// PTQ, Definition 4).
    Ptq {
        /// The twig pattern, in the target schema's vocabulary.
        pattern: TwigPattern,
        /// Shared options.
        options: QueryOptions,
    },
    /// A PTQ at node granularity: mappings pin query nodes to specific
    /// source *schema nodes* (exact when labels repeat — see
    /// [`crate::path_ptq`]).
    PtqNodes {
        /// The twig pattern.
        pattern: TwigPattern,
        /// Shared options.
        options: QueryOptions,
    },
    /// A top-k PTQ (Definition 5): only the `k` most-probable relevant
    /// mappings are evaluated.
    TopK {
        /// The twig pattern.
        pattern: TwigPattern,
        /// How many answers to keep.
        k: usize,
        /// Shared options.
        options: QueryOptions,
    },
    /// A keyword query (SLCA semantics) over every possible mapping.
    Keyword {
        /// The keyword terms (vocabulary terms rewrite per mapping;
        /// value terms match document text directly).
        terms: Vec<String>,
        /// Shared options (the evaluator hint is ignored — keyword
        /// evaluation has a single strategy).
        options: QueryOptions,
    },
    /// An aggregate over a PTQ's matches: COUNT / SUM / MIN / MAX of
    /// the pattern's spine-leaf values, reported per mapping and as a
    /// probability-weighted marginal (see [`crate::aggregate`]).
    Aggregate {
        /// The twig pattern, evaluated exactly like [`Query::Ptq`].
        pattern: TwigPattern,
        /// The function folded over each mapping's matches.
        func: AggFunc,
        /// Shared options (the granularity must stay
        /// [`Granularity::Mapping`] — rows are inherently per mapping).
        options: QueryOptions,
    },
}

impl Query {
    /// A label-granularity PTQ with default options (auto plan).
    pub fn ptq(pattern: TwigPattern) -> Query {
        Query::Ptq {
            pattern,
            options: QueryOptions::default(),
        }
    }

    /// A node-granularity PTQ with default options.
    pub fn ptq_nodes(pattern: TwigPattern) -> Query {
        Query::PtqNodes {
            pattern,
            options: QueryOptions::default(),
        }
    }

    /// A top-k PTQ with default options.
    pub fn topk(pattern: TwigPattern, k: usize) -> Query {
        Query::TopK {
            pattern,
            k,
            options: QueryOptions::default(),
        }
    }

    /// A keyword query with default options.
    pub fn keyword(terms: Vec<String>) -> Query {
        Query::Keyword {
            terms,
            options: QueryOptions::default(),
        }
    }

    /// An aggregate query with default options.
    pub fn aggregate(pattern: TwigPattern, func: AggFunc) -> Query {
        Query::Aggregate {
            pattern,
            func,
            options: QueryOptions::default(),
        }
    }

    /// The query's shared options.
    pub fn options(&self) -> &QueryOptions {
        match self {
            Query::Ptq { options, .. }
            | Query::PtqNodes { options, .. }
            | Query::TopK { options, .. }
            | Query::Keyword { options, .. }
            | Query::Aggregate { options, .. } => options,
        }
    }

    /// Mutable access to the shared options.
    pub fn options_mut(&mut self) -> &mut QueryOptions {
        match self {
            Query::Ptq { options, .. }
            | Query::PtqNodes { options, .. }
            | Query::TopK { options, .. }
            | Query::Keyword { options, .. }
            | Query::Aggregate { options, .. } => options,
        }
    }

    /// The twig pattern, for PTQ-shaped queries.
    pub fn pattern(&self) -> Option<&TwigPattern> {
        match self {
            Query::Ptq { pattern, .. }
            | Query::PtqNodes { pattern, .. }
            | Query::TopK { pattern, .. }
            | Query::Aggregate { pattern, .. } => Some(pattern),
            Query::Keyword { .. } => None,
        }
    }

    /// Returns the query with the evaluator hint replaced.
    pub fn with_evaluator(mut self, evaluator: EvaluatorHint) -> Query {
        self.options_mut().evaluator = evaluator;
        self
    }

    /// Returns the query with the answer granularity replaced.
    pub fn with_granularity(mut self, granularity: Granularity) -> Query {
        self.options_mut().granularity = granularity;
        self
    }

    /// Returns the query with the probability threshold replaced.
    pub fn with_min_probability(mut self, min_probability: f64) -> Query {
        self.options_mut().min_probability = min_probability;
        self
    }

    /// Checks the query is evaluable: options in range, keyword lists
    /// within the evaluator's limits.
    pub fn validate(&self) -> Result<(), UxmError> {
        self.options().validate()?;
        if let Query::Keyword { terms, .. } = self {
            let refs: Vec<&str> = terms.iter().map(String::as_str).collect();
            KeywordError::check(&refs)?;
        }
        if let Query::Aggregate { options, .. } = self {
            if options.granularity == Granularity::Distinct {
                return Err(UxmError::InvalidQuery(
                    "aggregate queries report per-mapping rows; \
                     granularity \"distinct\" does not apply"
                        .into(),
                ));
            }
        }
        Ok(())
    }

    /// The canonical JSON form (see the module docs for the format).
    pub fn to_json(&self) -> Json {
        match self {
            Query::Ptq { pattern, options } => Json::Obj(vec![
                ("options".into(), options.to_json()),
                ("pattern".into(), Json::str(pattern.to_string())),
                ("type".into(), Json::str("ptq")),
            ]),
            Query::PtqNodes { pattern, options } => Json::Obj(vec![
                ("options".into(), options.to_json()),
                ("pattern".into(), Json::str(pattern.to_string())),
                ("type".into(), Json::str("ptq-nodes")),
            ]),
            Query::TopK {
                pattern,
                k,
                options,
            } => Json::Obj(vec![
                ("k".into(), Json::uint(*k as u64)),
                ("options".into(), options.to_json()),
                ("pattern".into(), Json::str(pattern.to_string())),
                ("type".into(), Json::str("topk")),
            ]),
            Query::Keyword { terms, options } => Json::Obj(vec![
                ("options".into(), options.to_json()),
                (
                    "terms".into(),
                    Json::Arr(terms.iter().map(Json::str).collect()),
                ),
                ("type".into(), Json::str("keyword")),
            ]),
            Query::Aggregate {
                pattern,
                func,
                options,
            } => Json::Obj(vec![
                ("func".into(), Json::str(func.wire_name())),
                ("options".into(), options.to_json()),
                ("pattern".into(), Json::str(pattern.to_string())),
                ("type".into(), Json::str("aggregate")),
            ]),
        }
    }

    /// [`Query::to_json`] rendered canonically.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Parses a query from its JSON form. Strict: unknown keys are
    /// rejected, so a round trip through [`Query::to_json_string`] is
    /// lossless and byte-stable.
    pub fn from_json(v: &Json) -> Result<Query, UxmError> {
        let members = v
            .as_obj()
            .ok_or_else(|| UxmError::Json("query must be an object".into()))?;
        let kind = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| UxmError::Json("query needs a \"type\" string".into()))?;
        let mut options = QueryOptions::default();
        let mut pattern: Option<TwigPattern> = None;
        let mut k: Option<usize> = None;
        let mut terms: Option<Vec<String>> = None;
        let mut func: Option<AggFunc> = None;
        for (key, val) in members {
            match key.as_str() {
                "type" => {}
                "options" => options = QueryOptions::from_json(val)?,
                "func" => {
                    func = Some(val.as_str().and_then(AggFunc::from_wire).ok_or_else(|| {
                        UxmError::Json(format!("func must be count | sum | min | max, got {val}"))
                    })?)
                }
                "pattern" => {
                    let text = val
                        .as_str()
                        .ok_or_else(|| UxmError::Json("pattern must be a string".into()))?;
                    pattern = Some(TwigPattern::parse(text)?);
                }
                "k" => {
                    k = Some(
                        val.as_usize()
                            .ok_or_else(|| UxmError::Json("k must be a whole number".into()))?,
                    )
                }
                "terms" => {
                    let items = val
                        .as_arr()
                        .ok_or_else(|| UxmError::Json("terms must be an array".into()))?;
                    terms = Some(
                        items
                            .iter()
                            .map(|t| {
                                t.as_str()
                                    .map(str::to_string)
                                    .ok_or_else(|| UxmError::Json("terms must be strings".into()))
                            })
                            .collect::<Result<_, _>>()?,
                    );
                }
                other => return Err(UxmError::Json(format!("unknown query key {other:?}"))),
            }
        }
        let need_pattern = |p: Option<TwigPattern>| {
            p.ok_or_else(|| UxmError::Json(format!("{kind} query needs a \"pattern\"")))
        };
        let reject = |present: bool, name: &str| -> Result<(), UxmError> {
            if present {
                Err(UxmError::Json(format!(
                    "{kind} query does not take {name:?}"
                )))
            } else {
                Ok(())
            }
        };
        let query = match kind {
            "ptq" => {
                reject(k.is_some(), "k")?;
                reject(terms.is_some(), "terms")?;
                reject(func.is_some(), "func")?;
                Query::Ptq {
                    pattern: need_pattern(pattern)?,
                    options,
                }
            }
            "ptq-nodes" => {
                reject(k.is_some(), "k")?;
                reject(terms.is_some(), "terms")?;
                reject(func.is_some(), "func")?;
                Query::PtqNodes {
                    pattern: need_pattern(pattern)?,
                    options,
                }
            }
            "topk" => {
                reject(terms.is_some(), "terms")?;
                reject(func.is_some(), "func")?;
                Query::TopK {
                    pattern: need_pattern(pattern)?,
                    k: k.ok_or_else(|| UxmError::Json("topk query needs \"k\"".into()))?,
                    options,
                }
            }
            "keyword" => {
                reject(k.is_some(), "k")?;
                reject(pattern.is_some(), "pattern")?;
                reject(func.is_some(), "func")?;
                Query::Keyword {
                    terms: terms
                        .ok_or_else(|| UxmError::Json("keyword query needs \"terms\"".into()))?,
                    options,
                }
            }
            "aggregate" => {
                reject(k.is_some(), "k")?;
                reject(terms.is_some(), "terms")?;
                Query::Aggregate {
                    pattern: need_pattern(pattern)?,
                    func: func
                        .ok_or_else(|| UxmError::Json("aggregate query needs \"func\"".into()))?,
                    options,
                }
            }
            other => {
                return Err(UxmError::Json(format!(
                    "unknown query type {other:?} \
                     (ptq | ptq-nodes | topk | keyword | aggregate)"
                )))
            }
        };
        Ok(query)
    }

    /// Parses a query from JSON text.
    pub fn from_json_str(text: &str) -> Result<Query, UxmError> {
        Query::from_json(&Json::parse(text)?)
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Query::Ptq { pattern, .. } => write!(f, "ptq {pattern}"),
            Query::PtqNodes { pattern, .. } => write!(f, "ptq-nodes {pattern}"),
            Query::TopK { pattern, k, .. } => write!(f, "topk {k} {pattern}"),
            Query::Keyword { terms, .. } => write!(f, "keyword {}", terms.join(" ")),
            Query::Aggregate { pattern, func, .. } => {
                write!(f, "aggregate {func} {pattern}")
            }
        }
    }
}

// ---------------------------------------------------------------------
// the response

/// One answer of a [`QueryResponse`], with provenance.
#[derive(Clone, Debug, PartialEq)]
pub struct Answer {
    /// The probability this answer is correct: one mapping's mass under
    /// [`Granularity::Mapping`], the contributing mappings' summed mass
    /// under [`Granularity::Distinct`].
    pub probability: f64,
    /// The contributing mappings, ascending (always non-empty; a
    /// singleton under [`Granularity::Mapping`]).
    pub mappings: Vec<MappingId>,
    /// The matches of the rewritten query on the document. Keyword
    /// answers encode each SLCA node as a single-node match.
    pub matches: Vec<TwigMatch>,
}

/// How a query was executed — returned with every response.
///
/// The cache counters are deltas of the session-wide counters taken
/// around this query's evaluation. On an engine serving **concurrent**
/// queries they may therefore include traffic from queries in flight at
/// the same time — they are diagnostics about the session, not an exact
/// per-query accounting. The `plan` and `relevant` fields are always
/// exact.
#[derive(Clone, Copy, Debug)]
pub struct ExecStats {
    /// The plan the [`crate::planner`] chose (and why).
    pub plan: Plan,
    /// The backend that **actually ran**. Usually equal to
    /// `plan.evaluator`; it differs when execution cannot follow the
    /// plan (keyword queries always run naive, and a compiled plan falls
    /// back to naive if the pattern cannot be lowered).
    pub backend: Evaluator,
    /// `|M_q|` — mappings the evaluator actually ran (after filtering,
    /// and for top-k after pruning).
    pub relevant: usize,
    /// Program-cache hits for this query: `1` when a compiled program
    /// was replayed from the engine's cache, `0` otherwise. Unlike the
    /// rewrite counters this is exact per-query accounting.
    pub program_cache_hits: u64,
    /// Program-cache misses for this query: `1` when the compiled
    /// backend ran and had to compile, `0` otherwise.
    pub program_cache_misses: u64,
    /// Session rewrite-cache hits observed while this query ran (see
    /// the type docs for the concurrency caveat).
    pub rewrite_hits: u64,
    /// Session rewrite-cache misses (computed entries) observed while
    /// this query ran (see the type docs for the concurrency caveat).
    pub rewrite_misses: u64,
    /// Wall-clock evaluation time, in microseconds.
    pub elapsed_us: u64,
}

/// The uniform response every query kind returns.
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// The answers, grouped per the query's [`Granularity`]. Empty for
    /// aggregate queries, whose result lives in `aggregate`.
    pub answers: Vec<Answer>,
    /// The aggregate block; `Some` exactly for [`Query::Aggregate`]
    /// (and only then present on the wire).
    pub aggregate: Option<AggregateResult>,
    /// Execution statistics.
    pub stats: ExecStats,
}

impl QueryResponse {
    /// Number of answers.
    pub fn len(&self) -> usize {
        self.answers.len()
    }

    /// True when no answer survived filtering.
    pub fn is_empty(&self) -> bool {
        self.answers.is_empty()
    }

    /// Total probability mass of the answers.
    pub fn total_probability(&self) -> f64 {
        self.answers.iter().map(|a| a.probability).sum()
    }

    /// The expected number of matches under the answer distribution,
    /// normalized over the answers' mass (cf.
    /// [`crate::semantics::expected_count`]).
    pub fn expected_count(&self) -> f64 {
        let mass = self.total_probability();
        if mass == 0.0 {
            return 0.0;
        }
        self.answers
            .iter()
            .map(|a| a.matches.len() as f64 * a.probability)
            .sum::<f64>()
            / mass
    }

    /// Per-match probabilities: for every distinct match, the summed
    /// probability of the answers producing it; sorted by probability
    /// descending, ties by match (cf.
    /// [`crate::semantics::match_probabilities`]).
    pub fn match_probabilities(&self) -> Vec<(TwigMatch, f64)> {
        let mut agg: Vec<(TwigMatch, f64)> = Vec::new();
        for answer in &self.answers {
            for m in &answer.matches {
                match agg.iter_mut().find(|(x, _)| x == m) {
                    Some((_, p)) => *p += answer.probability,
                    None => agg.push((m.clone(), answer.probability)),
                }
            }
        }
        agg.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        agg
    }

    /// The canonical JSON form.
    pub fn to_json(&self) -> Json {
        let answers = self
            .answers
            .iter()
            .map(|a| {
                Json::Obj(vec![
                    (
                        "mappings".into(),
                        Json::Arr(a.mappings.iter().map(|m| Json::uint(m.0 as u64)).collect()),
                    ),
                    (
                        "matches".into(),
                        Json::Arr(
                            a.matches
                                .iter()
                                .map(|m| {
                                    Json::Arr(
                                        m.nodes.iter().map(|n| Json::uint(n.0 as u64)).collect(),
                                    )
                                })
                                .collect(),
                        ),
                    ),
                    ("probability".into(), Json::Num(a.probability)),
                ])
            })
            .collect();
        let stats = Json::Obj(vec![
            ("backend".into(), Json::str(self.stats.backend.wire_name())),
            ("elapsed_us".into(), Json::uint(self.stats.elapsed_us)),
            (
                "evaluator".into(),
                Json::str(self.stats.plan.evaluator.wire_name()),
            ),
            (
                "plan_reason".into(),
                Json::str(self.stats.plan.reason.wire_name()),
            ),
            (
                "program_cache_hits".into(),
                Json::uint(self.stats.program_cache_hits),
            ),
            (
                "program_cache_misses".into(),
                Json::uint(self.stats.program_cache_misses),
            ),
            ("relevant".into(), Json::uint(self.stats.relevant as u64)),
            ("rewrite_hits".into(), Json::uint(self.stats.rewrite_hits)),
            (
                "rewrite_misses".into(),
                Json::uint(self.stats.rewrite_misses),
            ),
        ]);
        let mut members = Vec::with_capacity(3);
        if let Some(aggregate) = &self.aggregate {
            members.push(("aggregate".into(), aggregate.to_json()));
        }
        members.push(("answers".into(), Json::Arr(answers)));
        members.push(("stats".into(), stats));
        Json::Obj(members)
    }

    /// [`QueryResponse::to_json`] rendered canonically.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }
}

// ---------------------------------------------------------------------
// shaping evaluator output into answers

/// Applies granularity and the probability threshold to raw per-mapping
/// PTQ answers. Used by the engine; the per-mapping input order is
/// preserved under [`Granularity::Mapping`].
pub(crate) fn shape_ptq_answers(raw: Vec<PtqAnswer>, options: &QueryOptions) -> Vec<Answer> {
    let per_mapping = raw.into_iter().map(|a| Answer {
        probability: a.probability,
        mappings: vec![a.mapping],
        matches: a.matches,
    });
    shape(per_mapping.collect(), options)
}

/// Keyword counterpart of [`shape_ptq_answers`]: each SLCA node becomes
/// a single-node match.
pub(crate) fn shape_keyword_answers(
    raw: Vec<KeywordAnswer>,
    options: &QueryOptions,
) -> Vec<Answer> {
    let per_mapping = raw.into_iter().map(|a| Answer {
        probability: a.probability,
        mappings: vec![a.mapping],
        matches: a
            .slcas
            .into_iter()
            .map(|n: DocNodeId| TwigMatch { nodes: vec![n] })
            .collect(),
    });
    shape(per_mapping.collect(), options)
}

fn shape(per_mapping: Vec<Answer>, options: &QueryOptions) -> Vec<Answer> {
    let mut answers = match options.granularity {
        Granularity::Mapping => per_mapping,
        Granularity::Distinct => {
            let mut groups: Vec<Answer> = Vec::new();
            for a in per_mapping {
                match groups.iter_mut().find(|g| g.matches == a.matches) {
                    Some(g) => {
                        g.probability += a.probability;
                        g.mappings.extend(a.mappings);
                    }
                    None => groups.push(a),
                }
            }
            for g in &mut groups {
                g.mappings.sort_unstable();
            }
            // Probability descending; ties by first contributing mapping
            // for a deterministic order.
            groups.sort_by(|a, b| {
                b.probability
                    .total_cmp(&a.probability)
                    .then_with(|| a.mappings.cmp(&b.mappings))
            });
            groups
        }
    };
    if options.min_probability > 0.0 {
        answers.retain(|a| a.probability >= options.min_probability);
    }
    answers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{Evaluator, PlanReason};

    fn q(s: &str) -> TwigPattern {
        TwigPattern::parse(s).unwrap()
    }

    #[test]
    fn json_roundtrip_is_byte_stable_for_all_kinds() {
        let queries = [
            Query::ptq(q("PO//ICN")),
            Query::ptq_nodes(q("ORDER/IP[./ICN]/SCN")),
            Query::topk(q("//IP//ICN"), 5),
            Query::keyword(vec!["ICN".into(), "Bob".into()]),
            Query::ptq(q("A[.='v']//B"))
                .with_evaluator(EvaluatorHint::Naive)
                .with_granularity(Granularity::Distinct)
                .with_min_probability(0.25),
            Query::ptq(q("A[contains(.,'v')]/*[.>=1.5]//B[@id='x']")),
            Query::aggregate(q("PO/Line/UnitPrice"), AggFunc::Sum),
            Query::aggregate(q("//Line[.<10]"), AggFunc::Count)
                .with_evaluator(EvaluatorHint::Compiled)
                .with_min_probability(0.1),
        ];
        for query in queries {
            let once = query.to_json_string();
            let parsed = Query::from_json_str(&once).unwrap();
            assert_eq!(parsed, query, "{once}");
            assert_eq!(parsed.to_json_string(), once, "byte-stable");
        }
    }

    #[test]
    fn parsing_defaults_missing_options() {
        let parsed = Query::from_json_str("{\"pattern\":\"//A\",\"type\":\"ptq\"}").unwrap();
        assert_eq!(parsed, Query::ptq(q("//A")));
        let partial = Query::from_json_str(
            "{\"options\":{\"granularity\":\"distinct\"},\"pattern\":\"//A\",\"type\":\"ptq\"}",
        )
        .unwrap();
        assert_eq!(partial.options().granularity, Granularity::Distinct);
        assert_eq!(partial.options().evaluator, EvaluatorHint::Auto);
    }

    #[test]
    fn parsing_rejects_malformed_queries() {
        for bad in [
            "{\"type\":\"ptq\"}",                             // no pattern
            "{\"pattern\":\"//A\",\"type\":\"nope\"}",        // unknown type
            "{\"pattern\":\"//A\",\"type\":\"topk\"}",        // topk without k
            "{\"k\":2,\"pattern\":\"//A\",\"type\":\"ptq\"}", // stray k
            "{\"pattern\":\"//A\",\"type\":\"keyword\"}",     // keyword w/o terms
            "{\"pattern\":\"//A\",\"type\":\"ptq\",\"x\":1}", // unknown key
            "{\"pattern\":\"A[\",\"type\":\"ptq\"}",          // bad twig
            "{\"options\":{\"evaluator\":\"fast\"},\"pattern\":\"//A\",\"type\":\"ptq\"}",
            "[]",
            "{\"pattern\":\"//A\",\"type\":\"aggregate\"}", // aggregate w/o func
            "{\"func\":\"avg\",\"pattern\":\"//A\",\"type\":\"aggregate\"}",
            "{\"func\":\"sum\",\"pattern\":\"//A\",\"type\":\"ptq\"}", // stray func
        ] {
            assert!(Query::from_json_str(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn validate_checks_options_and_terms() {
        assert!(Query::ptq(q("//A")).validate().is_ok());
        assert!(matches!(
            Query::ptq(q("//A")).with_min_probability(-0.1).validate(),
            Err(UxmError::InvalidQuery(_))
        ));
        assert!(matches!(
            Query::ptq(q("//A"))
                .with_min_probability(f64::NAN)
                .validate(),
            Err(UxmError::InvalidQuery(_))
        ));
        assert_eq!(
            Query::keyword(vec![]).validate(),
            Err(UxmError::Keyword(KeywordError::Empty))
        );
        assert_eq!(
            Query::keyword(vec!["t".into(); 65]).validate(),
            Err(UxmError::Keyword(KeywordError::TooMany { count: 65 }))
        );
        assert!(Query::aggregate(q("//A"), AggFunc::Sum).validate().is_ok());
        assert!(matches!(
            Query::aggregate(q("//A"), AggFunc::Sum)
                .with_granularity(Granularity::Distinct)
                .validate(),
            Err(UxmError::InvalidQuery(_))
        ));
    }

    fn raw(entries: &[(u32, f64, &[u32])]) -> Vec<PtqAnswer> {
        entries
            .iter()
            .map(|&(id, p, nodes)| PtqAnswer {
                mapping: MappingId(id),
                probability: p,
                matches: nodes
                    .iter()
                    .map(|&n| TwigMatch {
                        nodes: vec![DocNodeId(n)],
                    })
                    .collect(),
            })
            .collect()
    }

    #[test]
    fn mapping_granularity_preserves_order_and_provenance() {
        let answers = shape_ptq_answers(
            raw(&[(0, 0.3, &[4]), (2, 0.2, &[5])]),
            &QueryOptions::default(),
        );
        assert_eq!(answers.len(), 2);
        assert_eq!(answers[0].mappings, vec![MappingId(0)]);
        assert_eq!(answers[1].mappings, vec![MappingId(2)]);
    }

    #[test]
    fn distinct_granularity_merges_identical_match_sets() {
        let options = QueryOptions {
            granularity: Granularity::Distinct,
            ..QueryOptions::default()
        };
        let answers = shape_ptq_answers(
            raw(&[(0, 0.3, &[4]), (1, 0.3, &[7]), (2, 0.2, &[4])]),
            &options,
        );
        assert_eq!(answers.len(), 2);
        // {4} collects mappings 0 and 2 with mass 0.5, ahead of {7}.
        assert!((answers[0].probability - 0.5).abs() < 1e-12);
        assert_eq!(answers[0].mappings, vec![MappingId(0), MappingId(2)]);
        assert_eq!(answers[1].mappings, vec![MappingId(1)]);
    }

    #[test]
    fn threshold_drops_low_mass_answers() {
        let options = QueryOptions {
            min_probability: 0.25,
            ..QueryOptions::default()
        };
        let answers = shape_ptq_answers(raw(&[(0, 0.3, &[4]), (1, 0.2, &[7])]), &options);
        assert_eq!(answers.len(), 1);
        assert_eq!(answers[0].mappings, vec![MappingId(0)]);
        // Under Distinct the threshold applies to the aggregated mass.
        let distinct = QueryOptions {
            min_probability: 0.25,
            granularity: Granularity::Distinct,
            ..QueryOptions::default()
        };
        let merged = shape_ptq_answers(raw(&[(0, 0.15, &[4]), (1, 0.15, &[4])]), &distinct);
        assert_eq!(merged.len(), 1, "0.15 + 0.15 clears the 0.25 threshold");
    }

    #[test]
    fn response_json_shape() {
        let response = QueryResponse {
            answers: vec![Answer {
                probability: 0.5,
                mappings: vec![MappingId(0), MappingId(3)],
                matches: vec![TwigMatch {
                    nodes: vec![DocNodeId(1), DocNodeId(4)],
                }],
            }],
            aggregate: None,
            stats: ExecStats {
                plan: Plan {
                    evaluator: Evaluator::BlockTree,
                    reason: PlanReason::SharedBlocks,
                },
                backend: Evaluator::BlockTree,
                relevant: 7,
                program_cache_hits: 0,
                program_cache_misses: 0,
                rewrite_hits: 2,
                rewrite_misses: 5,
                elapsed_us: 123,
            },
        };
        let text = response.to_json_string();
        assert_eq!(
            text,
            "{\"answers\":[{\"mappings\":[0,3],\"matches\":[[1,4]],\"probability\":0.5}],\
             \"stats\":{\"backend\":\"block-tree\",\"elapsed_us\":123,\
             \"evaluator\":\"block-tree\",\"plan_reason\":\"shared-blocks\",\
             \"program_cache_hits\":0,\"program_cache_misses\":0,\"relevant\":7,\
             \"rewrite_hits\":2,\"rewrite_misses\":5}}"
        );
        // Emitted JSON is canonical: re-parsing and re-writing is stable.
        assert_eq!(Json::parse(&text).unwrap().to_string(), text);
        // An aggregate block, when present, leads the response object.
        let mut with_agg = response.clone();
        with_agg.answers = Vec::new();
        with_agg.aggregate = Some(AggregateResult::new(
            AggFunc::Count,
            vec![crate::aggregate::AggRow {
                mapping: MappingId(1),
                probability: 0.5,
                value: Some(2.0),
            }],
        ));
        let text = with_agg.to_json_string();
        assert_eq!(
            text,
            "{\"aggregate\":{\"func\":\"count\",\"marginal\":2,\
             \"rows\":[{\"mapping\":1,\"probability\":0.5,\"value\":2}]},\
             \"answers\":[],\
             \"stats\":{\"backend\":\"block-tree\",\"elapsed_us\":123,\
             \"evaluator\":\"block-tree\",\"plan_reason\":\"shared-blocks\",\
             \"program_cache_hits\":0,\"program_cache_misses\":0,\"relevant\":7,\
             \"rewrite_hits\":2,\"rewrite_misses\":5}}"
        );
        assert_eq!(Json::parse(&text).unwrap().to_string(), text);
    }

    #[test]
    fn display_names_the_kind() {
        assert_eq!(Query::ptq(q("//A")).to_string(), "ptq //A");
        assert_eq!(Query::topk(q("//A"), 3).to_string(), "topk 3 //A");
        assert_eq!(
            Query::keyword(vec!["a".into(), "b".into()]).to_string(),
            "keyword a b"
        );
        assert_eq!(
            Query::aggregate(q("//A"), AggFunc::Max).to_string(),
            "aggregate max //A"
        );
    }
}
