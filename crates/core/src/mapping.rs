//! Possible mappings with probabilities, stored columnar.
//!
//! A *possible mapping* (paper §I) is a partial one-to-one function from
//! source to target elements; a schema matching is modelled as a
//! probability distribution over possible mappings, obtained by ranking
//! assignments (§V) and normalizing their scores.
//!
//! [`PossibleMappings`] keeps the whole set in structure-of-arrays form:
//! one contiguous `Vec<f64>` each for scores and probabilities, and one
//! flat correspondence array addressed per mapping through a CSR offsets
//! table — no per-mapping `Vec` allocations, no pointer chasing on the
//! evaluation hot path. Borrowing a mapping yields a cheap [`MappingRef`]
//! view (a slice plus two floats). Source and target element labels are
//! additionally interned into one [`SymbolTable`] namespace so label-level
//! rewriting can run on dense `u32` symbols; the `String`-returning APIs
//! are shims over the symbol paths.

use uxm_assignment::merge::RankedMapping;
use uxm_assignment::murty::RankVariant;
use uxm_assignment::partition::{murty_top_h_mappings, partition_top_h};
use uxm_matching::SchemaMatching;
use uxm_xml::{Schema, SchemaNodeId, Symbol, SymbolTable};

/// Index of a mapping within a [`PossibleMappings`] set.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct MappingId(pub u32);

impl MappingId {
    /// Widens to a `usize` for indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// One possible mapping `m_i` with its probability `p_i`, in owned form.
///
/// The columnar [`PossibleMappings`] store does not hold `Mapping`s
/// directly — this type is the construction/decode currency (e.g. the
/// storage codec builds a `Vec<Mapping>` and hands it to
/// [`PossibleMappings::from_parts`]) and the owned counterpart of the
/// borrowed [`MappingRef`] view.
#[derive(Clone, Debug, PartialEq)]
pub struct Mapping {
    /// Correspondence pairs `(source, target)`, sorted by target element.
    /// At most one pair per source and per target (one-to-one).
    pub pairs: Vec<(SchemaNodeId, SchemaNodeId)>,
    /// The raw assignment score (sum of correspondence scores).
    pub score: f64,
    /// Normalized probability; the set sums to 1.
    pub prob: f64,
}

/// A borrowed view of one mapping inside a [`PossibleMappings`] set: a
/// slice into the flat correspondence array plus the score/probability
/// read from their contiguous columns. `Copy`, so it passes by value.
#[derive(Clone, Copy, Debug)]
pub struct MappingRef<'a> {
    /// Correspondence pairs `(source, target)`, sorted by target element.
    pub pairs: &'a [(SchemaNodeId, SchemaNodeId)],
    /// The raw assignment score (sum of correspondence scores).
    pub score: f64,
    /// Normalized probability; the set sums to 1.
    pub prob: f64,
}

impl PartialEq for MappingRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.pairs == other.pairs && self.score == other.score && self.prob == other.prob
    }
}

impl<'a> MappingRef<'a> {
    /// The source element mapped to target `t`, if any (binary search).
    pub fn source_for_target(&self, t: SchemaNodeId) -> Option<SchemaNodeId> {
        self.pairs
            .binary_search_by_key(&t, |&(_, tt)| tt)
            .ok()
            .map(|i| self.pairs[i].0)
    }

    /// True iff the mapping contains exactly this pair.
    pub fn contains_pair(&self, s: SchemaNodeId, t: SchemaNodeId) -> bool {
        self.source_for_target(t) == Some(s)
    }

    /// Number of correspondences.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True for the empty mapping.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Copies the view into an owned [`Mapping`].
    pub fn to_owned(&self) -> Mapping {
        Mapping {
            pairs: self.pairs.to_vec(),
            score: self.score,
            prob: self.prob,
        }
    }
}

impl Mapping {
    /// The source element mapped to target `t`, if any (binary search).
    pub fn source_for_target(&self, t: SchemaNodeId) -> Option<SchemaNodeId> {
        self.as_ref().source_for_target(t)
    }

    /// True iff the mapping contains exactly this pair.
    pub fn contains_pair(&self, s: SchemaNodeId, t: SchemaNodeId) -> bool {
        self.as_ref().contains_pair(s, t)
    }

    /// Number of correspondences.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True for the empty mapping.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Borrows the owned mapping as a [`MappingRef`] view.
    pub fn as_ref(&self) -> MappingRef<'_> {
        MappingRef {
            pairs: &self.pairs,
            score: self.score,
            prob: self.prob,
        }
    }
}

/// A set `M` of possible mappings between two schemas, with probabilities,
/// in columnar (structure-of-arrays) layout.
#[derive(Clone, Debug)]
pub struct PossibleMappings {
    /// The source schema `S`.
    pub source: Schema,
    /// The target schema `T`.
    pub target: Schema,
    /// Raw assignment scores, one per mapping.
    scores: Vec<f64>,
    /// Normalized probabilities, one per mapping (sums to 1).
    probs: Vec<f64>,
    /// CSR offsets: mapping `i`'s pairs are
    /// `pairs[pair_offsets[i]..pair_offsets[i+1]]`.
    pair_offsets: Vec<u32>,
    /// All correspondence pairs, flat; each mapping's run is sorted by
    /// target element.
    pairs: Vec<(SchemaNodeId, SchemaNodeId)>,
    /// Source and target element labels interned into one namespace.
    labels: SymbolTable,
    /// Per source schema node: its label's symbol.
    source_syms: Vec<Symbol>,
    /// Per target schema node: its label's symbol.
    target_syms: Vec<Symbol>,
}

impl PossibleMappings {
    /// Derives the top-`h` possible mappings of `matching` using the
    /// partition-based generator (§V-B) and normalizes probabilities.
    pub fn top_h(matching: &SchemaMatching, h: usize) -> PossibleMappings {
        Self::from_ranked(
            matching.source.clone(),
            matching.target.clone(),
            partition_top_h(matching, h),
        )
    }

    /// Like [`PossibleMappings::top_h`] but using whole-graph Murty ranking
    /// (the paper's baseline generator).
    pub fn top_h_murty(matching: &SchemaMatching, h: usize) -> PossibleMappings {
        Self::from_ranked(
            matching.source.clone(),
            matching.target.clone(),
            murty_top_h_mappings(matching, h, RankVariant::PascoalLazy),
        )
    }

    /// Wraps pre-ranked mappings, normalizing scores into probabilities.
    /// A zero total score (all mappings empty) falls back to uniform.
    pub fn from_ranked(
        source: Schema,
        target: Schema,
        ranked: Vec<RankedMapping>,
    ) -> PossibleMappings {
        let total: f64 = ranked.iter().map(|r| r.score).sum();
        let n = ranked.len().max(1);
        let mut pm = PossibleMappings::empty_columns(source, target, ranked.len());
        for r in ranked {
            pm.push_row(
                &r.pairs,
                r.score,
                if total > 0.0 {
                    r.score / total
                } else {
                    1.0 / n as f64
                },
            );
        }
        pm
    }

    /// Builds directly from mappings (tests); normalizes probabilities
    /// from the given scores.
    pub fn from_pairs(
        source: Schema,
        target: Schema,
        sets: Vec<(Vec<(SchemaNodeId, SchemaNodeId)>, f64)>,
    ) -> PossibleMappings {
        let ranked = sets
            .into_iter()
            .map(|(mut pairs, score)| {
                pairs.sort_by_key(|&(s, t)| (t, s));
                RankedMapping { pairs, score }
            })
            .collect();
        Self::from_ranked(source, target, ranked)
    }

    /// Wraps fully-specified mappings verbatim (the storage codec's decode
    /// path) — scores and probabilities are taken as stored, not
    /// renormalized.
    pub fn from_parts(source: Schema, target: Schema, mappings: Vec<Mapping>) -> Self {
        let mut pm = PossibleMappings::empty_columns(source, target, mappings.len());
        for m in mappings {
            pm.push_row(&m.pairs, m.score, m.prob);
        }
        pm
    }

    /// Assembles the columnar set directly (the snapshot v2 decoder's
    /// fast path). `pair_offsets` must have one more entry than `scores`,
    /// start at 0, be non-decreasing, and end at `pairs.len()`; callers
    /// validate pair ids against the schemas beforehand.
    pub fn from_columns(
        source: Schema,
        target: Schema,
        scores: Vec<f64>,
        probs: Vec<f64>,
        pair_offsets: Vec<u32>,
        pairs: Vec<(SchemaNodeId, SchemaNodeId)>,
    ) -> Option<PossibleMappings> {
        let n = scores.len();
        if probs.len() != n
            || pair_offsets.len() != n + 1
            || pair_offsets.first() != Some(&0)
            || *pair_offsets.last().expect("n+1 entries") as usize != pairs.len()
            || pair_offsets.windows(2).any(|w| w[0] > w[1])
        {
            return None;
        }
        let (labels, source_syms, target_syms) = intern_labels(&source, &target);
        Some(PossibleMappings {
            source,
            target,
            scores,
            probs,
            pair_offsets,
            pairs,
            labels,
            source_syms,
            target_syms,
        })
    }

    /// Assembles the columnar set from **verbatim** arena columns — the
    /// snapshot v3 decoder's zero-copy path. On top of the shape checks
    /// of [`PossibleMappings::from_columns`], every pair is
    /// bounds-checked against the schemas in one linear scan and every
    /// per-mapping run must be sorted by target id (the order
    /// [`MappingRef::source_for_target`]'s binary search relies on);
    /// there is no per-pair decode, sort, or dedup.
    pub fn from_raw_columns(
        source: Schema,
        target: Schema,
        scores: Vec<f64>,
        probs: Vec<f64>,
        pair_offsets: Vec<u32>,
        pairs: Vec<(SchemaNodeId, SchemaNodeId)>,
    ) -> Option<PossibleMappings> {
        // CSR shape first — the run slicing below depends on it.
        if pair_offsets.len() != scores.len() + 1
            || pair_offsets.first() != Some(&0)
            || pair_offsets.windows(2).any(|w| w[0] > w[1])
            || *pair_offsets.last()? as usize != pairs.len()
        {
            return None;
        }
        let (ns, nt) = (source.len() as u32, target.len() as u32);
        if pairs.iter().any(|&(s, t)| s.0 >= ns || t.0 >= nt) {
            return None;
        }
        let sorted_by_target = pair_offsets.windows(2).all(|w| {
            let run = &pairs[w[0] as usize..w[1] as usize];
            run.windows(2).all(|p| (p[0].1, p[0].0) <= (p[1].1, p[1].0))
        });
        if !sorted_by_target {
            return None;
        }
        PossibleMappings::from_columns(source, target, scores, probs, pair_offsets, pairs)
    }

    fn empty_columns(source: Schema, target: Schema, capacity: usize) -> PossibleMappings {
        let (labels, source_syms, target_syms) = intern_labels(&source, &target);
        PossibleMappings {
            source,
            target,
            scores: Vec::with_capacity(capacity),
            probs: Vec::with_capacity(capacity),
            pair_offsets: {
                let mut v = Vec::with_capacity(capacity + 1);
                v.push(0);
                v
            },
            pairs: Vec::new(),
            labels,
            source_syms,
            target_syms,
        }
    }

    fn push_row(&mut self, pairs: &[(SchemaNodeId, SchemaNodeId)], score: f64, prob: f64) {
        self.pairs.extend_from_slice(pairs);
        self.pair_offsets.push(self.pairs.len() as u32);
        self.scores.push(score);
        self.probs.push(prob);
    }

    /// Number of mappings (the paper's `|M|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True when no mappings exist.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// Borrow a mapping as a [`MappingRef`] view.
    #[inline]
    pub fn mapping(&self, id: MappingId) -> MappingRef<'_> {
        let (a, b) = (
            self.pair_offsets[id.idx()] as usize,
            self.pair_offsets[id.idx() + 1] as usize,
        );
        MappingRef {
            pairs: &self.pairs[a..b],
            score: self.scores[id.idx()],
            prob: self.probs[id.idx()],
        }
    }

    /// The probability column — one contiguous `f64` per mapping.
    #[inline]
    pub fn probabilities(&self) -> &[f64] {
        &self.probs
    }

    /// The probability of one mapping (O(1) column read).
    #[inline]
    pub fn prob(&self, id: MappingId) -> f64 {
        self.probs[id.idx()]
    }

    /// Total number of correspondence pairs across all mappings.
    #[inline]
    pub fn total_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// The score column — one contiguous `f64` per mapping (the snapshot
    /// v3 encoder writes it verbatim).
    #[inline]
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// The CSR pair offsets: mapping `i`'s pairs are
    /// `pairs_flat()[pair_offsets()[i]..pair_offsets()[i+1]]`.
    #[inline]
    pub fn pair_offsets(&self) -> &[u32] {
        &self.pair_offsets
    }

    /// The flat pair arena behind every mapping, in CSR order.
    #[inline]
    pub fn pairs_flat(&self) -> &[(SchemaNodeId, SchemaNodeId)] {
        &self.pairs
    }

    /// Iterate over `(id, mapping view)`.
    pub fn iter(&self) -> impl Iterator<Item = (MappingId, MappingRef<'_>)> {
        self.ids().map(|id| (id, self.mapping(id)))
    }

    /// All mapping ids.
    pub fn ids(&self) -> impl Iterator<Item = MappingId> {
        (0..self.scores.len() as u32).map(MappingId)
    }

    /// The shared label namespace (source + target element labels).
    #[inline]
    pub fn label_table(&self) -> &SymbolTable {
        &self.labels
    }

    /// The interned label symbol of a source schema node.
    #[inline]
    pub fn source_label_sym(&self, s: SchemaNodeId) -> Symbol {
        self.source_syms[s.idx()]
    }

    /// The interned label symbol of a target schema node.
    #[inline]
    pub fn target_label_sym(&self, t: SchemaNodeId) -> Symbol {
        self.target_syms[t.idx()]
    }

    /// The interned source-label symbols that target-label `label` can
    /// rewrite to under mapping `id` — the allocation-lean core of
    /// [`PossibleMappings::source_labels_for`]: for every target element
    /// labelled `label` that the mapping covers, the symbol of its mapped
    /// source element's label (sorted, deduplicated).
    pub fn source_label_syms_for(&self, id: MappingId, label: &str) -> Vec<Symbol> {
        let m = self.mapping(id);
        let mut out: Vec<Symbol> = self
            .target
            .nodes_with_label(label)
            .into_iter()
            .filter_map(|t| m.source_for_target(t))
            .map(|s| self.source_syms[s.idx()])
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The source labels that target-label `label` can rewrite to under
    /// mapping `id`, as owned strings in sorted order. A shim over
    /// [`PossibleMappings::source_label_syms_for`] for `String`-level
    /// callers.
    pub fn source_labels_for(&self, id: MappingId, label: &str) -> Vec<String> {
        let mut out: Vec<String> = self
            .source_label_syms_for(id, label)
            .into_iter()
            .map(|s| self.labels.name(s).to_string())
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Node-granularity variant of [`PossibleMappings::source_labels_for`]:
    /// the source *schema nodes* target-label `label` rewrites to under
    /// mapping `id`.
    pub fn source_nodes_for(&self, id: MappingId, label: &str) -> Vec<SchemaNodeId> {
        let m = self.mapping(id);
        let mut out: Vec<SchemaNodeId> = self
            .target
            .nodes_with_label(label)
            .into_iter()
            .filter_map(|t| m.source_for_target(t))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Resident heap bytes of the columnar store (scores, probabilities,
    /// offsets, flat pairs, and the label symbol arrays); excludes the
    /// schemas, which the engine accounts separately.
    pub fn arena_bytes(&self) -> usize {
        use std::mem::size_of;
        (self.scores.len() + self.probs.len()) * size_of::<f64>()
            + self.pair_offsets.len() * size_of::<u32>()
            + self.pairs.len() * size_of::<(SchemaNodeId, SchemaNodeId)>()
            + (self.source_syms.len() + self.target_syms.len()) * size_of::<Symbol>()
    }
}

/// Interns every source and target element label into one namespace and
/// records each node's symbol.
fn intern_labels(source: &Schema, target: &Schema) -> (SymbolTable, Vec<Symbol>, Vec<Symbol>) {
    let mut labels = SymbolTable::new();
    let source_syms = source
        .ids()
        .map(|id| labels.intern(source.label(id)))
        .collect();
    let target_syms = target
        .ids()
        .map(|id| labels.intern(target.label(id)))
        .collect();
    (labels, source_syms, target_syms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uxm_matching::Matcher;

    fn schemas() -> (Schema, Schema) {
        (
            Schema::parse_outline("Order(BillTo(Name) Seller(Name))").unwrap(),
            Schema::parse_outline("ORDER(INVOICE(CONTACT))").unwrap(),
        )
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (s, t) = schemas();
        let matching = Matcher::context().match_schemas(&s, &t);
        let pm = PossibleMappings::top_h(&matching, 8);
        assert!(!pm.is_empty());
        let total: f64 = pm.iter().map(|(_, m)| m.prob).sum();
        assert!((total - 1.0).abs() < 1e-9, "sum {total}");
        assert_eq!(pm.probabilities().len(), pm.len());
    }

    #[test]
    fn ranked_order_preserved() {
        let (s, t) = schemas();
        let matching = Matcher::context().match_schemas(&s, &t);
        let pm = PossibleMappings::top_h(&matching, 8);
        let scores: Vec<f64> = pm.iter().map(|(_, m)| m.score).collect();
        for w in scores.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn partition_and_murty_generators_agree() {
        let (s, t) = schemas();
        let matching = Matcher::context().match_schemas(&s, &t);
        let a = PossibleMappings::top_h(&matching, 6);
        let b = PossibleMappings::top_h_murty(&matching, 6);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x.1.score - y.1.score).abs() < 1e-9);
        }
    }

    #[test]
    fn source_for_target_lookup() {
        let (s, t) = schemas();
        let pm = PossibleMappings::from_pairs(
            s,
            t,
            vec![(
                vec![
                    (SchemaNodeId(0), SchemaNodeId(0)),
                    (SchemaNodeId(2), SchemaNodeId(2)),
                ],
                1.0,
            )],
        );
        let m = pm.mapping(MappingId(0));
        assert_eq!(m.source_for_target(SchemaNodeId(0)), Some(SchemaNodeId(0)));
        assert_eq!(m.source_for_target(SchemaNodeId(1)), None);
        assert!(m.contains_pair(SchemaNodeId(2), SchemaNodeId(2)));
        assert!(!m.contains_pair(SchemaNodeId(1), SchemaNodeId(2)));
    }

    #[test]
    fn source_labels_for_unions_over_duplicate_labels() {
        let s = Schema::parse_outline("Order(BillTo(Name) Seller(Name))").unwrap();
        let t = Schema::parse_outline("PO(Inv(CN) Sup(CN))").unwrap();
        let inv_cn = t.nodes_with_label("CN")[0];
        let sup_cn = t.nodes_with_label("CN")[1];
        let bill_name = s.nodes_with_label("Name")[0];
        let seller_name = s.nodes_with_label("Name")[1];
        let pm = PossibleMappings::from_pairs(
            s,
            t,
            vec![(vec![(bill_name, inv_cn), (seller_name, sup_cn)], 1.0)],
        );
        let labels = pm.source_labels_for(MappingId(0), "CN");
        assert_eq!(labels, vec!["Name".to_string()]);
        assert!(pm.source_labels_for(MappingId(0), "Sup").is_empty());
        // The symbol path agrees with the string shim.
        let syms = pm.source_label_syms_for(MappingId(0), "CN");
        assert_eq!(syms.len(), 1);
        assert_eq!(pm.label_table().name(syms[0]), "Name");
    }

    #[test]
    fn uniform_fallback_for_zero_scores() {
        let (s, t) = schemas();
        let pm = PossibleMappings::from_pairs(s, t, vec![(vec![], 0.0), (vec![], 0.0)]);
        assert!((pm.mapping(MappingId(0)).prob - 0.5).abs() < 1e-12);
        assert!((pm.prob(MappingId(0)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_pairs_sorts_by_target() {
        let (s, t) = schemas();
        let pm = PossibleMappings::from_pairs(
            s,
            t,
            vec![(
                vec![
                    (SchemaNodeId(2), SchemaNodeId(2)),
                    (SchemaNodeId(0), SchemaNodeId(0)),
                ],
                1.0,
            )],
        );
        let m = pm.mapping(MappingId(0));
        assert!(m.pairs[0].1 < m.pairs[1].1);
    }

    #[test]
    fn columnar_roundtrip_through_owned_mappings() {
        let (s, t) = schemas();
        let matching = Matcher::context().match_schemas(&s, &t);
        let pm = PossibleMappings::top_h(&matching, 6);
        let owned: Vec<Mapping> = pm.iter().map(|(_, m)| m.to_owned()).collect();
        let back = PossibleMappings::from_parts(pm.source.clone(), pm.target.clone(), owned);
        assert_eq!(pm.len(), back.len());
        for (a, b) in pm.iter().zip(back.iter()) {
            assert_eq!(a.1, b.1);
        }
        assert_eq!(pm.total_pairs(), back.total_pairs());
    }

    #[test]
    fn from_columns_validates_offsets() {
        let (s, t) = schemas();
        assert!(PossibleMappings::from_columns(
            s.clone(),
            t.clone(),
            vec![1.0],
            vec![1.0],
            vec![0, 1],
            vec![(SchemaNodeId(0), SchemaNodeId(0))],
        )
        .is_some());
        // Offsets not covering the pair array.
        assert!(PossibleMappings::from_columns(
            s.clone(),
            t.clone(),
            vec![1.0],
            vec![1.0],
            vec![0, 0],
            vec![(SchemaNodeId(0), SchemaNodeId(0))],
        )
        .is_none());
        // Decreasing offsets.
        assert!(PossibleMappings::from_columns(
            s,
            t,
            vec![1.0, 1.0],
            vec![0.5, 0.5],
            vec![0, 1, 0],
            vec![(SchemaNodeId(0), SchemaNodeId(0))],
        )
        .is_none());
    }
}
