//! Possible mappings with probabilities.
//!
//! A *possible mapping* (paper §I) is a partial one-to-one function from
//! source to target elements; a schema matching is modelled as a
//! probability distribution over possible mappings, obtained by ranking
//! assignments (§V) and normalizing their scores.

use uxm_assignment::merge::RankedMapping;
use uxm_assignment::murty::RankVariant;
use uxm_assignment::partition::{murty_top_h_mappings, partition_top_h};
use uxm_matching::SchemaMatching;
use uxm_xml::{Schema, SchemaNodeId};

/// Index of a mapping within a [`PossibleMappings`] set.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct MappingId(pub u32);

impl MappingId {
    /// Widens to a `usize` for indexing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// One possible mapping `m_i` with its probability `p_i`.
#[derive(Clone, Debug, PartialEq)]
pub struct Mapping {
    /// Correspondence pairs `(source, target)`, sorted by target element.
    /// At most one pair per source and per target (one-to-one).
    pub pairs: Vec<(SchemaNodeId, SchemaNodeId)>,
    /// The raw assignment score (sum of correspondence scores).
    pub score: f64,
    /// Normalized probability; the set sums to 1.
    pub prob: f64,
}

impl Mapping {
    /// The source element mapped to target `t`, if any (binary search).
    pub fn source_for_target(&self, t: SchemaNodeId) -> Option<SchemaNodeId> {
        self.pairs
            .binary_search_by_key(&t, |&(_, tt)| tt)
            .ok()
            .map(|i| self.pairs[i].0)
    }

    /// True iff the mapping contains exactly this pair.
    pub fn contains_pair(&self, s: SchemaNodeId, t: SchemaNodeId) -> bool {
        self.source_for_target(t) == Some(s)
    }

    /// Number of correspondences.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True for the empty mapping.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// A set `M` of possible mappings between two schemas, with probabilities.
#[derive(Clone, Debug)]
pub struct PossibleMappings {
    /// The source schema `S`.
    pub source: Schema,
    /// The target schema `T`.
    pub target: Schema,
    mappings: Vec<Mapping>,
}

impl PossibleMappings {
    /// Derives the top-`h` possible mappings of `matching` using the
    /// partition-based generator (§V-B) and normalizes probabilities.
    pub fn top_h(matching: &SchemaMatching, h: usize) -> PossibleMappings {
        Self::from_ranked(
            matching.source.clone(),
            matching.target.clone(),
            partition_top_h(matching, h),
        )
    }

    /// Like [`PossibleMappings::top_h`] but using whole-graph Murty ranking
    /// (the paper's baseline generator).
    pub fn top_h_murty(matching: &SchemaMatching, h: usize) -> PossibleMappings {
        Self::from_ranked(
            matching.source.clone(),
            matching.target.clone(),
            murty_top_h_mappings(matching, h, RankVariant::PascoalLazy),
        )
    }

    /// Wraps pre-ranked mappings, normalizing scores into probabilities.
    /// A zero total score (all mappings empty) falls back to uniform.
    pub fn from_ranked(
        source: Schema,
        target: Schema,
        ranked: Vec<RankedMapping>,
    ) -> PossibleMappings {
        let total: f64 = ranked.iter().map(|r| r.score).sum();
        let n = ranked.len().max(1);
        let mappings = ranked
            .into_iter()
            .map(|r| Mapping {
                prob: if total > 0.0 {
                    r.score / total
                } else {
                    1.0 / n as f64
                },
                pairs: r.pairs,
                score: r.score,
            })
            .collect();
        PossibleMappings {
            source,
            target,
            mappings,
        }
    }

    /// Builds directly from mappings (tests); normalizes probabilities
    /// from the given scores.
    pub fn from_pairs(
        source: Schema,
        target: Schema,
        sets: Vec<(Vec<(SchemaNodeId, SchemaNodeId)>, f64)>,
    ) -> PossibleMappings {
        let ranked = sets
            .into_iter()
            .map(|(mut pairs, score)| {
                pairs.sort_by_key(|&(s, t)| (t, s));
                RankedMapping { pairs, score }
            })
            .collect();
        Self::from_ranked(source, target, ranked)
    }

    /// Wraps fully-specified mappings verbatim (the storage codec's decode
    /// path) — scores and probabilities are taken as stored, not
    /// renormalized.
    pub fn from_parts(source: Schema, target: Schema, mappings: Vec<Mapping>) -> Self {
        PossibleMappings {
            source,
            target,
            mappings,
        }
    }

    /// Number of mappings (the paper's `|M|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.mappings.len()
    }

    /// True when no mappings exist.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.mappings.is_empty()
    }

    /// Borrow a mapping.
    #[inline]
    pub fn mapping(&self, id: MappingId) -> &Mapping {
        &self.mappings[id.idx()]
    }

    /// Iterate over `(id, mapping)`.
    pub fn iter(&self) -> impl Iterator<Item = (MappingId, &Mapping)> {
        self.mappings
            .iter()
            .enumerate()
            .map(|(i, m)| (MappingId(i as u32), m))
    }

    /// All mapping ids.
    pub fn ids(&self) -> impl Iterator<Item = MappingId> {
        (0..self.mappings.len() as u32).map(MappingId)
    }

    /// The source labels that target-label `label` can rewrite to under
    /// mapping `id`: for every target element labelled `label` that the
    /// mapping covers, the label of its mapped source element.
    pub fn source_labels_for(&self, id: MappingId, label: &str) -> Vec<String> {
        let m = self.mapping(id);
        let mut out = Vec::new();
        for t in self.target.nodes_with_label(label) {
            if let Some(s) = m.source_for_target(t) {
                out.push(self.source.label(s).to_string());
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Node-granularity variant of [`PossibleMappings::source_labels_for`]:
    /// the source *schema nodes* target-label `label` rewrites to under
    /// mapping `id`.
    pub fn source_nodes_for(&self, id: MappingId, label: &str) -> Vec<SchemaNodeId> {
        let m = self.mapping(id);
        let mut out: Vec<SchemaNodeId> = self
            .target
            .nodes_with_label(label)
            .into_iter()
            .filter_map(|t| m.source_for_target(t))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uxm_matching::Matcher;

    fn schemas() -> (Schema, Schema) {
        (
            Schema::parse_outline("Order(BillTo(Name) Seller(Name))").unwrap(),
            Schema::parse_outline("ORDER(INVOICE(CONTACT))").unwrap(),
        )
    }

    #[test]
    fn probabilities_sum_to_one() {
        let (s, t) = schemas();
        let matching = Matcher::context().match_schemas(&s, &t);
        let pm = PossibleMappings::top_h(&matching, 8);
        assert!(!pm.is_empty());
        let total: f64 = pm.iter().map(|(_, m)| m.prob).sum();
        assert!((total - 1.0).abs() < 1e-9, "sum {total}");
    }

    #[test]
    fn ranked_order_preserved() {
        let (s, t) = schemas();
        let matching = Matcher::context().match_schemas(&s, &t);
        let pm = PossibleMappings::top_h(&matching, 8);
        let scores: Vec<f64> = pm.iter().map(|(_, m)| m.score).collect();
        for w in scores.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn partition_and_murty_generators_agree() {
        let (s, t) = schemas();
        let matching = Matcher::context().match_schemas(&s, &t);
        let a = PossibleMappings::top_h(&matching, 6);
        let b = PossibleMappings::top_h_murty(&matching, 6);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert!((x.1.score - y.1.score).abs() < 1e-9);
        }
    }

    #[test]
    fn source_for_target_lookup() {
        let (s, t) = schemas();
        let pm = PossibleMappings::from_pairs(
            s,
            t,
            vec![(
                vec![
                    (SchemaNodeId(0), SchemaNodeId(0)),
                    (SchemaNodeId(2), SchemaNodeId(2)),
                ],
                1.0,
            )],
        );
        let m = pm.mapping(MappingId(0));
        assert_eq!(m.source_for_target(SchemaNodeId(0)), Some(SchemaNodeId(0)));
        assert_eq!(m.source_for_target(SchemaNodeId(1)), None);
        assert!(m.contains_pair(SchemaNodeId(2), SchemaNodeId(2)));
        assert!(!m.contains_pair(SchemaNodeId(1), SchemaNodeId(2)));
    }

    #[test]
    fn source_labels_for_unions_over_duplicate_labels() {
        let s = Schema::parse_outline("Order(BillTo(Name) Seller(Name))").unwrap();
        let t = Schema::parse_outline("PO(Inv(CN) Sup(CN))").unwrap();
        let inv_cn = t.nodes_with_label("CN")[0];
        let sup_cn = t.nodes_with_label("CN")[1];
        let bill_name = s.nodes_with_label("Name")[0];
        let seller_name = s.nodes_with_label("Name")[1];
        let pm = PossibleMappings::from_pairs(
            s,
            t,
            vec![(vec![(bill_name, inv_cn), (seller_name, sup_cn)], 1.0)],
        );
        let labels = pm.source_labels_for(MappingId(0), "CN");
        assert_eq!(labels, vec!["Name".to_string()]);
        assert!(pm.source_labels_for(MappingId(0), "Sup").is_empty());
    }

    #[test]
    fn uniform_fallback_for_zero_scores() {
        let (s, t) = schemas();
        let pm = PossibleMappings::from_pairs(s, t, vec![(vec![], 0.0), (vec![], 0.0)]);
        assert!((pm.mapping(MappingId(0)).prob - 0.5).abs() < 1e-12);
    }

    #[test]
    fn from_pairs_sorts_by_target() {
        let (s, t) = schemas();
        let pm = PossibleMappings::from_pairs(
            s,
            t,
            vec![(
                vec![
                    (SchemaNodeId(2), SchemaNodeId(2)),
                    (SchemaNodeId(0), SchemaNodeId(0)),
                ],
                1.0,
            )],
        );
        let m = pm.mapping(MappingId(0));
        assert!(m.pairs[0].1 < m.pairs[1].1);
    }
}
