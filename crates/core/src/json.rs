//! Minimal JSON values with a *canonical* writer — the wire substrate of
//! [`crate::api`].
//!
//! The container this workspace builds in has no crates.io access, so
//! (like the stand-ins under `crates/compat/`) this is a small offline
//! implementation instead of a serde dependency. It covers exactly what
//! the query wire format needs:
//!
//! * a [`Json`] value tree (null, bool, number, string, array, object);
//! * a strict recursive-descent parser ([`Json::parse`]) that rejects
//!   trailing input;
//! * a canonical writer ([`Json::write`] / `Display`): no whitespace,
//!   object keys in the order the encoder emits them (every encoder in
//!   this crate emits keys alphabetically), integers without a fraction,
//!   and floats in Rust's shortest round-trip form.
//!
//! Canonical output is what makes the wire format *byte-stable*:
//! `write(parse(write(x))) == write(x)` for every value this crate
//! serializes, which `uxm batch` files and the round-trip tests rely on.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers are exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved and is what the canonical
    /// writer emits.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience string constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Convenience unsigned-integer constructor (exact up to 2^53).
    pub fn uint(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Member lookup on an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number in
    /// `usize` range.
    pub fn as_usize(&self) -> Option<usize> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n) {
            Some(n as usize)
        } else {
            None
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if the value is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Parses `input`, rejecting anything but exactly one JSON value
    /// (surrounding whitespace is allowed, trailing input is not).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing input"));
        }
        Ok(v)
    }

    /// Appends the canonical encoding to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s);
        f.write_str(&s)
    }
}

/// Whole numbers up to 2^53 print without a fraction; everything else
/// uses Rust's shortest round-trip `f64` form (also stable under
/// re-parsing). Non-finite values have no JSON encoding and become
/// `null`.
fn write_number(n: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: a byte offset and what went wrong there.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset in the input where parsing failed.
    pub offset: usize,
    /// What the parser expected or found.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn try_word(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'0'..=b'9' | b'-') => self.number(),
            _ => {
                if self.try_word("null") {
                    Ok(Json::Null)
                } else if self.try_word("true") {
                    Ok(Json::Bool(true))
                } else if self.try_word("false") {
                    Ok(Json::Bool(false))
                } else {
                    Err(self.err("expected a JSON value"))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{', "expected '{'")?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.err("duplicate object key"));
            }
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.try_word("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                            // hex4 leaves pos past the digits; the shared
                            // `pos += 1` below is for the single-char
                            // escapes, so compensate here.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(self.err("raw control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Parser<'a>| {
            let s = p.pos;
            while p.peek().is_some_and(|b| b.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(input: &str) -> String {
        Json::parse(input).unwrap().to_string()
    }

    #[test]
    fn scalars() {
        assert_eq!(roundtrip("null"), "null");
        assert_eq!(roundtrip("true"), "true");
        assert_eq!(roundtrip(" false "), "false");
        assert_eq!(roundtrip("42"), "42");
        assert_eq!(roundtrip("-7"), "-7");
        assert_eq!(roundtrip("0.2"), "0.2");
        assert_eq!(roundtrip("1e3"), "1000");
        assert_eq!(roundtrip("\"hi\""), "\"hi\"");
    }

    #[test]
    fn containers_and_nesting() {
        assert_eq!(roundtrip("[1, 2, [3]]"), "[1,2,[3]]");
        assert_eq!(
            roundtrip("{\"a\": [true, null], \"b\": {\"c\": 0.5}}"),
            "{\"a\":[true,null],\"b\":{\"c\":0.5}}"
        );
        assert_eq!(roundtrip("{}"), "{}");
        assert_eq!(roundtrip("[]"), "[]");
    }

    #[test]
    fn canonical_output_is_a_fixpoint() {
        for s in [
            "{\"answers\":[{\"p\":0.3}],\"n\":12}",
            "[0.1,2,\"x\\ny\",{\"k\":[]}]",
            "{\"pattern\":\"PO//ICN\",\"type\":\"ptq\"}",
        ] {
            let once = roundtrip(s);
            assert_eq!(roundtrip(&once), once, "{s}");
        }
    }

    #[test]
    fn string_escapes() {
        assert_eq!(roundtrip("\"a\\u0041b\""), "\"aAb\"");
        assert_eq!(roundtrip("\"\\u00e9\""), "\"é\"");
        // Surrogate pair for U+1F600.
        assert_eq!(roundtrip("\"\\ud83d\\ude00\""), "\"\u{1F600}\"");
        assert_eq!(roundtrip("\"q\\\"\\\\\\n\""), "\"q\\\"\\\\\\n\"");
        // Control characters re-encode as escapes.
        assert_eq!(Json::Str("\u{1}".into()).to_string(), "\"\\u0001\"");
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1.",
            "1e",
            "\"x",
            "\"\\q\"",
            "\"\\ud800\"",
            "[1] x",
            "{\"a\":1,\"a\":2}",
            "nan",
            "--1",
            "01x",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse("{\"k\":5,\"s\":\"t\",\"a\":[1],\"f\":1.5}").unwrap();
        assert_eq!(v.get("k").and_then(Json::as_usize), Some(5));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("t"));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("f").and_then(Json::as_usize), None, "non-integer");
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.as_obj().map(<[(String, Json)]>::len), Some(4));
    }

    #[test]
    fn non_finite_numbers_write_null() {
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
    }
}
