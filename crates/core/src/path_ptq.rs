//! Node-granularity PTQ evaluation.
//!
//! The default evaluators ([`crate::ptq`], [`crate::ptq_tree`]) rewrite a
//! query node's *label*: any source element carrying a rewritten label may
//! match. That is exact when element labels are unique (as in the paper's
//! figures, where the three ContactName elements are labelled BCN/RCN/OCN),
//! but coarser than the mapping itself when labels repeat.
//!
//! This module implements the finer semantics: a mapping sends a query
//! node to specific source *schema nodes*, and only document nodes
//! instantiating those schema nodes (identified by their root label path
//! via [`PathIndex`]) may match. This is the reproduction's main extension
//! beyond the paper's experimental prototype.

use crate::block_tree::BlockTree;
use crate::engine::{eval_basic_nodes, eval_tree_nodes, SessionState};
use crate::mapping::{MappingId, PossibleMappings};
use crate::ptq::PtqResult;
use uxm_twig::TwigPattern;
use uxm_xml::{DocNodeId, Document, PathIndex, Schema, SchemaNodeId};

/// Rewrites `q` through mapping `id` at node granularity: per query node,
/// the source schema nodes it may match. `None` when irrelevant.
pub fn rewrite_nodes_with_mapping(
    q: &TwigPattern,
    pm: &PossibleMappings,
    id: MappingId,
) -> Option<Vec<Vec<SchemaNodeId>>> {
    let mut sets = Vec::with_capacity(q.len());
    for node in q.ids() {
        let nodes = pm.source_nodes_for(id, &q.node(node).label);
        if nodes.is_empty() {
            return None;
        }
        sets.push(nodes);
    }
    Some(sets)
}

/// Node-granularity rewrite through a raw correspondence set (sorted by
/// target) — the c-block analogue.
pub fn rewrite_nodes_with_pairs(
    q: &TwigPattern,
    target: &Schema,
    pairs: &[(SchemaNodeId, SchemaNodeId)],
) -> Option<Vec<Vec<SchemaNodeId>>> {
    let source_for = |t: SchemaNodeId| -> Option<SchemaNodeId> {
        pairs
            .binary_search_by_key(&t, |&(_, tt)| tt)
            .ok()
            .map(|i| pairs[i].0)
    };
    let mut sets = Vec::with_capacity(q.len());
    for node in q.ids() {
        let mut nodes: Vec<SchemaNodeId> = target
            .nodes_with_label(&q.node(node).label)
            .into_iter()
            .filter_map(source_for)
            .collect();
        if nodes.is_empty() {
            return None;
        }
        nodes.sort_unstable();
        nodes.dedup();
        sets.push(nodes);
    }
    Some(sets)
}

/// Maps source schema nodes to the document nodes instantiating them
/// (matched by root label path).
pub fn schema_nodes_to_doc(
    sets: &[Vec<SchemaNodeId>],
    source: &Schema,
    index: &PathIndex,
) -> Vec<Vec<DocNodeId>> {
    sets.iter()
        .map(|nodes| {
            let mut out = Vec::new();
            for &s in nodes {
                out.extend_from_slice(index.nodes(&source.path(s).replace('.', "/")));
            }
            out
        })
        .collect()
}

/// The node-granularity `filter_mappings`.
pub fn filter_mappings_nodes(q: &TwigPattern, pm: &PossibleMappings) -> Vec<MappingId> {
    pm.ids()
        .filter(|&id| rewrite_nodes_with_mapping(q, pm, id).is_some())
        .collect()
}

/// Node-granularity `query_basic`: rewrite and evaluate per mapping.
///
/// Deprecated shim over [`crate::engine`] with a throwaway session.
///
/// Use instead: [`QueryEngine::run`](crate::engine::QueryEngine::run)
/// with [`Query::ptq_nodes`](crate::api::Query::ptq_nodes) pinned to
/// [`EvaluatorHint::Naive`](crate::api::EvaluatorHint::Naive).
#[deprecated(
    note = "build an api::Query::ptq_nodes (evaluator hint Naive) and call QueryEngine::run"
)]
pub fn ptq_basic_nodes(
    q: &TwigPattern,
    pm: &PossibleMappings,
    doc: &Document,
    index: &PathIndex,
) -> PtqResult {
    let state = SessionState::build(pm, doc);
    eval_basic_nodes(q, pm, doc, index, &state)
}

/// Node-granularity PTQ with the block tree: blocks anchored at target
/// nodes answer once per block; everything else shares work across
/// mappings whose node-rewrites agree.
///
/// Node candidates pin query nodes to exact source elements, so a block's
/// answer is valid for precisely `b.M` — no label-uniqueness side
/// condition is needed (unlike the label-mode evaluator).
///
/// Use instead: [`QueryEngine::run`](crate::engine::QueryEngine::run)
/// with [`Query::ptq_nodes`](crate::api::Query::ptq_nodes) pinned to
/// [`EvaluatorHint::BlockTree`](crate::api::EvaluatorHint::BlockTree).
#[deprecated(
    note = "build an api::Query::ptq_nodes (evaluator hint BlockTree) and call QueryEngine::run"
)]
pub fn ptq_with_tree_nodes(
    q: &TwigPattern,
    pm: &PossibleMappings,
    doc: &Document,
    index: &PathIndex,
    tree: &BlockTree,
) -> PtqResult {
    let state = SessionState::build(pm, doc);
    eval_tree_nodes(q, pm, doc, index, tree, &state)
}

#[cfg(test)]
#[allow(deprecated)] // shim coverage: the legacy wrappers stay under test
mod tests {
    use super::*;
    use crate::block_tree::BlockTreeConfig;
    use crate::ptq::ptq_basic;
    use uxm_xml::parse_document;

    /// Shared labels that label-mode cannot tell apart: all three contacts
    /// are `ContactName`.
    fn ambiguous_setup() -> (PossibleMappings, Document, PathIndex) {
        let source =
            Schema::parse_outline("Order(BP(BOC(ContactName) ROC(ContactName) OOC(ContactName)))")
                .unwrap();
        let target = Schema::parse_outline("ORDER(IP(ICN))").unwrap();
        let bp = source.nodes_with_label("BP")[0];
        let cns = source.nodes_with_label("ContactName");
        let t = |l: &str| target.nodes_with_label(l)[0];
        let pm = PossibleMappings::from_pairs(
            source.clone(),
            target.clone(),
            vec![
                (vec![(bp, t("IP")), (cns[0], t("ICN"))], 0.3),
                (vec![(bp, t("IP")), (cns[1], t("ICN"))], 0.3),
                (vec![(bp, t("IP")), (cns[2], t("ICN"))], 0.2),
            ],
        );
        let doc = parse_document(
            "<Order><BP><BOC><ContactName>Cathy</ContactName></BOC>\
             <ROC><ContactName>Bob</ContactName></ROC>\
             <OOC><ContactName>Alice</ContactName></OOC></BP></Order>",
        )
        .unwrap();
        let index = PathIndex::new(&doc);
        (pm, doc, index)
    }

    #[test]
    fn node_mode_disambiguates_shared_labels() {
        let (pm, doc, index) = ambiguous_setup();
        let q = TwigPattern::parse("//IP//ICN").unwrap();
        let res = ptq_basic_nodes(&q, &pm, &doc, &index);
        assert_eq!(res.len(), 3);
        let names: Vec<&str> = res
            .iter()
            .map(|a| {
                assert_eq!(a.matches.len(), 1, "exactly one contact per mapping");
                doc.text(a.matches[0].nodes[1]).unwrap()
            })
            .collect();
        assert_eq!(names, ["Cathy", "Bob", "Alice"]);
    }

    #[test]
    fn label_mode_merges_shared_labels() {
        // The contrast: label-granularity returns all three contacts for
        // every mapping.
        let (pm, doc, _) = ambiguous_setup();
        let q = TwigPattern::parse("//IP//ICN").unwrap();
        let res = ptq_basic(&q, &pm, &doc);
        assert!(res.iter().all(|a| a.matches.len() == 3));
    }

    #[test]
    fn tree_agrees_with_basic_in_node_mode() {
        let (pm, doc, index) = ambiguous_setup();
        let tree = BlockTree::build(
            &pm.target.clone(),
            &pm,
            &BlockTreeConfig {
                tau: 0.4,
                ..BlockTreeConfig::default()
            },
        );
        for qs in ["//IP//ICN", "//ICN", "ORDER//ICN", "ORDER"] {
            let q = TwigPattern::parse(qs).unwrap();
            let mut a = ptq_basic_nodes(&q, &pm, &doc, &index);
            let mut b = ptq_with_tree_nodes(&q, &pm, &doc, &index, &tree);
            a.normalize();
            b.normalize();
            assert_eq!(a, b, "query {qs}");
        }
    }

    #[test]
    fn node_mode_agrees_with_label_mode_when_labels_unique() {
        // On unique-label schemas the two semantics coincide.
        let source = Schema::parse_outline("Ord(A(X) B(Y))").unwrap();
        let target = Schema::parse_outline("PO(P(Q))").unwrap();
        let s = |l: &str| source.nodes_with_label(l)[0];
        let t = |l: &str| target.nodes_with_label(l)[0];
        let pm = PossibleMappings::from_pairs(
            source.clone(),
            target.clone(),
            vec![
                (vec![(s("A"), t("P")), (s("X"), t("Q"))], 2.0),
                (vec![(s("B"), t("P")), (s("Y"), t("Q"))], 1.0),
            ],
        );
        let doc = parse_document("<Ord><A><X>1</X></A><B><Y>2</Y></B></Ord>").unwrap();
        let index = PathIndex::new(&doc);
        let q = TwigPattern::parse("PO/P/Q").unwrap();
        let mut by_label = ptq_basic(&q, &pm, &doc);
        let mut by_node = ptq_basic_nodes(&q, &pm, &doc, &index);
        by_label.normalize();
        by_node.normalize();
        assert_eq!(by_label, by_node);
    }

    #[test]
    fn path_index_resolves_instances() {
        let (_, _doc, index) = ambiguous_setup();
        assert_eq!(index.nodes("Order/BP/BOC/ContactName").len(), 1);
        assert_eq!(index.nodes("Order/BP").len(), 1);
        assert_eq!(index.nodes("Nope").len(), 0);
        assert!(index.len() >= 7);
    }
}
