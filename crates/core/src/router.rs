//! Horizontal scale-out: a [`Router`] scatter-gathering over sharded
//! [`EngineRegistry`] instances behind a consistent-hash ring.
//!
//! The single-registry deployment of [`crate::server`] scales
//! vertically: one registry owns every engine, one LRU budget, one
//! thrash gate. This module partitions the collection instead. A
//! [`Router`] spawns N **shards** — each a full [`Server`] on a
//! loopback ephemeral port over its *own* registry, with its own
//! [`RegistryConfig`] memory budget and thrash gate — and fronts them
//! with the same serving shell, routing by a [`Ring`]:
//!
//! ```text
//!                      clients
//!                         │
//!                 ┌───────▼────────┐
//!                 │  front Server  │   POST /query/<e>  POST /batch
//!                 │  (RouterHandler)│  POST /topk  GET /stats /shards
//!                 └───────┬────────┘
//!            consistent-hash ring on engine name
//!           ┌─────────────┼─────────────┐
//!     ┌─────▼─────┐ ┌─────▼─────┐ ┌─────▼─────┐
//!     │  shard 0  │ │  shard 1  │ │  shard 2  │   each: Server over
//!     │ registry  │ │ registry  │ │ registry  │   its own registry
//!     └─────┬─────┘ └─────┬─────┘ └─────┬─────┘   (budget, thrash gate)
//!           └─────────────┴─────────────┘
//!              one shared snapshot directory
//! ```
//!
//! * `POST /query/<engine>` forwards to the owning shard and relays its
//!   response verbatim.
//! * `POST /batch` is split by owner, fanned out concurrently, and the
//!   per-shard results are spliced back **in request order** — the
//!   merged body is byte-identical to a single big registry's.
//! * `POST /topk` (served by single-registry servers too) evaluates a
//!   top-k query across many engines; each shard returns its local
//!   top-k and the router merges by the **pinned total order** of
//!   [`merge_topk`] — probability descending, then engine name, then
//!   [`MappingId`] list — so the cross-shard merge is exact and
//!   byte-identical to the unsharded answer.
//! * `POST /aggregate` (served by single-registry servers too)
//!   evaluates an aggregate query across many engines; the router
//!   concatenates the per-engine entries in **name-ascending order**
//!   and recomputes the fleet value with [`merge_marginals`] over that
//!   order (count/sum add, min/max take the extremum) — an associative
//!   fold, never a merge of per-shard partials, so the sharded body is
//!   byte-identical to the unsharded one.
//! * `GET /shards` reports the ring layout plus per-shard footprint,
//!   evictions, and shed hydrations; `GET /stats` nests each shard's
//!   full stats body under the front server's own counters.
//!
//! # Rebalancing
//!
//! [`Router::add_shard`] / [`Router::remove_shard`] rebuild the ring
//! for the new shard set (rebuild-per-epoch), drop residents from
//! shards that no longer own them, and let the new owner re-hydrate
//! from the **shared snapshot directory** on first touch. Because every
//! shard can hydrate every engine, there is no window where a routed
//! name 404s mid-rebalance: a request racing the ring swap either
//! reaches the old owner (which still serves it correctly) or the new
//! owner (which hydrates it); a request that reaches a *removed* shard
//! fails the internal hop and is retried once against the fresh ring.
//!
//! # Fairness across the hop
//!
//! The TCP peer of every shard-bound connection is the router itself,
//! so shard servers run with
//! [`ServerConfig::trust_forwarded_client`] and the router forwards the
//! original client identity as `x-uxm-client` — shard-side per-client
//! 429s keep binding to the real client. See [`crate::server`].

#![deny(missing_docs)]

use crate::aggregate::{merge_marginals, opt_num, AggFunc};
use crate::api::Query;
use crate::error::UxmError;
use crate::json::Json;
use crate::mapping::MappingId;
use crate::registry::{BatchQuery, EngineRegistry, RegistryConfig, RegistryStats};
use crate::server::{
    error_body, status_for, Client, Handler, RegistryHandler, Request, Server, ServerConfig,
    ServerHandle, ServerStats,
};
use crate::sync;
use std::net::{IpAddr, SocketAddr};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use uxm_twig::TwigMatch;
use uxm_xml::DocNodeId;

// ---------------------------------------------------------------------
// the ring

/// FNV-1a (64-bit) with a murmur-style avalanche finalizer: a tiny,
/// dependency-free, stable hash. Both ring point placement and
/// engine-name lookup use it, so ownership is a pure function of
/// (shard ids, vnodes, name) — identical across processes and
/// releases. The finalizer matters: raw FNV-1a of short keys differing
/// only in the last characters (engine names like `e0001`, vnode keys
/// like `shard-0/63`) spans a sliver of the 64-bit space, which skews
/// ring arcs badly; full-width mixing restores a uniform spread.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// A consistent-hash ring: each shard contributes `vnodes` points
/// (hashes of `"shard-<id>/<v>"`), and an engine name is owned by the
/// first point at or clockwise-after the name's hash.
///
/// Virtual nodes smooth the partition (64 per shard keeps the largest
/// shard within a few tens of percent of fair share), and consistent
/// hashing keeps rebalancing minimal: adding a shard moves only the
/// names whose arc the new points claim.
#[derive(Clone, Debug)]
pub struct Ring {
    vnodes: usize,
    /// Sorted `(hash, shard_id)` points.
    points: Vec<(u64, u64)>,
}

impl Ring {
    /// Builds the ring for `shard_ids` with `vnodes` points per shard.
    pub fn build(shard_ids: &[u64], vnodes: usize) -> Ring {
        let mut points: Vec<(u64, u64)> = shard_ids
            .iter()
            .flat_map(|&id| {
                (0..vnodes).map(move |v| (fnv1a(format!("shard-{id}/{v}").as_bytes()), id))
            })
            .collect();
        // Ties (identical hashes) sort by shard id — deterministic.
        points.sort_unstable();
        Ring { vnodes, points }
    }

    /// The shard owning `name`.
    ///
    /// # Panics
    ///
    /// Panics on an empty ring; the router never drops below one shard.
    pub fn owner(&self, name: &str) -> u64 {
        assert!(!self.points.is_empty(), "ring has no shards");
        let h = fnv1a(name.as_bytes());
        let i = self.points.partition_point(|&(p, _)| p < h);
        self.points[if i == self.points.len() { 0 } else { i }].1
    }

    /// Points per shard.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Total points on the ring (`shards × vnodes`).
    pub fn points(&self) -> usize {
        self.points.len()
    }
}

// ---------------------------------------------------------------------
// cross-shard top-k

/// One answer of a cross-engine top-k: an [`crate::api::Answer`]
/// tagged with the engine that produced it.
#[derive(Clone, Debug, PartialEq)]
pub struct TopKAnswer {
    /// The engine this answer came from.
    pub engine: String,
    /// The answer's probability.
    pub probability: f64,
    /// The contributing mappings, ascending.
    pub mappings: Vec<MappingId>,
    /// The matches of the rewritten query on the document.
    pub matches: Vec<TwigMatch>,
}

impl TopKAnswer {
    /// The canonical JSON form (keys alphabetical:
    /// `engine < mappings < matches < probability`).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("engine".into(), Json::str(&self.engine)),
            (
                "mappings".into(),
                Json::Arr(
                    self.mappings
                        .iter()
                        .map(|m| Json::uint(m.0 as u64))
                        .collect(),
                ),
            ),
            (
                "matches".into(),
                Json::Arr(
                    self.matches
                        .iter()
                        .map(|m| {
                            Json::Arr(m.nodes.iter().map(|n| Json::uint(n.0 as u64)).collect())
                        })
                        .collect(),
                ),
            ),
            ("probability".into(), Json::Num(self.probability)),
        ])
    }

    /// Parses the canonical form back (the router re-parses shard
    /// responses to merge them).
    pub fn from_json(value: &Json) -> Result<TopKAnswer, UxmError> {
        let Json::Obj(members) = value else {
            return Err(UxmError::Json("top-k answer must be an object".into()));
        };
        let mut engine = None;
        let mut probability = None;
        let mut mappings = None;
        let mut matches = None;
        for (key, val) in members {
            match key.as_str() {
                "engine" => {
                    engine = Some(
                        val.as_str()
                            .ok_or_else(|| UxmError::Json("engine must be a string".into()))?
                            .to_string(),
                    )
                }
                "probability" => {
                    probability = Some(
                        val.as_f64()
                            .ok_or_else(|| UxmError::Json("probability must be a number".into()))?,
                    )
                }
                "mappings" => {
                    let arr = val
                        .as_arr()
                        .ok_or_else(|| UxmError::Json("mappings must be an array".into()))?;
                    mappings = Some(
                        arr.iter()
                            .map(|v| {
                                v.as_f64().map(|n| MappingId(n as u32)).ok_or_else(|| {
                                    UxmError::Json("mapping ids must be numbers".into())
                                })
                            })
                            .collect::<Result<Vec<_>, _>>()?,
                    );
                }
                "matches" => {
                    let arr = val
                        .as_arr()
                        .ok_or_else(|| UxmError::Json("matches must be an array".into()))?;
                    matches = Some(
                        arr.iter()
                            .map(|m| {
                                let nodes = m
                                    .as_arr()
                                    .ok_or_else(|| {
                                        UxmError::Json("a match must be an array".into())
                                    })?
                                    .iter()
                                    .map(|n| {
                                        n.as_f64().map(|n| DocNodeId(n as u32)).ok_or_else(|| {
                                            UxmError::Json("match nodes must be numbers".into())
                                        })
                                    })
                                    .collect::<Result<Vec<_>, _>>()?;
                                Ok(TwigMatch { nodes })
                            })
                            .collect::<Result<Vec<_>, UxmError>>()?,
                    );
                }
                other => return Err(UxmError::Json(format!("unknown answer member {other:?}"))),
            }
        }
        match (engine, probability, mappings, matches) {
            (Some(engine), Some(probability), Some(mappings), Some(matches)) => Ok(TopKAnswer {
                engine,
                probability,
                mappings,
                matches,
            }),
            _ => Err(UxmError::Json(
                "top-k answer needs engine, mappings, matches, probability".into(),
            )),
        }
    }
}

/// Sorts `answers` by the **pinned cross-engine total order** and keeps
/// the best `k`:
///
/// 1. probability **descending** (IEEE `total_cmp`, so ties are exact);
/// 2. engine name **ascending**;
/// 3. contributing [`MappingId`] list **ascending** (lexicographic).
///
/// The order is total and the selection associative: the top-k of a
/// union equals the top-k of the per-shard top-k's, which is what makes
/// the router's cross-shard merge byte-identical to an unsharded
/// evaluation. Documented in `docs/wire-format.md`; changing it is a
/// wire-format break.
pub fn merge_topk(mut answers: Vec<TopKAnswer>, k: usize) -> Vec<TopKAnswer> {
    answers.sort_by(|a, b| {
        b.probability
            .total_cmp(&a.probability)
            .then_with(|| a.engine.cmp(&b.engine))
            .then_with(|| a.mappings.cmp(&b.mappings))
    });
    answers.truncate(k);
    answers
}

/// The parsed body of `POST /topk`:
/// `{"engines":[…],"query":{…}}` with `engines` optional (default: all
/// known engines) and `query` required to be a top-k query.
pub struct TopKRequest {
    /// Explicit engine names, when given.
    pub engines: Option<Vec<String>>,
    /// The top-k query to run on each engine.
    pub query: Query,
    /// The query's `k`.
    pub k: usize,
}

impl TopKRequest {
    /// Strict parse (unknown members rejected, like the rest of the
    /// wire format).
    pub fn from_json_str(body: &str) -> Result<TopKRequest, UxmError> {
        let parsed = Json::parse(body)?;
        let Json::Obj(members) = &parsed else {
            return Err(UxmError::Json("topk body must be an object".into()));
        };
        let mut engines = None;
        let mut query = None;
        for (key, value) in members {
            match key.as_str() {
                "engines" => {
                    let arr = value.as_arr().ok_or_else(|| {
                        UxmError::Json("engines must be an array of names".into())
                    })?;
                    engines = Some(
                        arr.iter()
                            .map(|v| {
                                v.as_str().map(str::to_string).ok_or_else(|| {
                                    UxmError::Json("engine names must be strings".into())
                                })
                            })
                            .collect::<Result<Vec<String>, _>>()?,
                    );
                }
                "query" => query = Some(Query::from_json(value)?),
                other => return Err(UxmError::Json(format!("unknown topk member {other:?}"))),
            }
        }
        let query = query.ok_or_else(|| UxmError::Json("topk body needs a \"query\"".into()))?;
        let Query::TopK { k, .. } = &query else {
            return Err(UxmError::InvalidQuery(
                "the /topk endpoint needs a top-k query (kind \"topk\")".into(),
            ));
        };
        let k = *k;
        Ok(TopKRequest { engines, query, k })
    }

    /// The canonical sub-request body the router sends each shard:
    /// the same query with an explicit (sorted) engine subset.
    fn sub_body(&self, names: &[String]) -> String {
        Json::Obj(vec![
            (
                "engines".into(),
                Json::Arr(names.iter().map(|n| Json::str(n.as_str())).collect()),
            ),
            ("query".into(), self.query.to_json()),
        ])
        .to_string()
    }
}

/// Renders the canonical `/topk` response body
/// (`{"answers":[…],"k":…}`).
fn topk_body(answers: &[TopKAnswer], k: usize) -> String {
    Json::Obj(vec![
        (
            "answers".into(),
            Json::Arr(answers.iter().map(TopKAnswer::to_json).collect()),
        ),
        ("k".into(), Json::uint(k as u64)),
    ])
    .to_string()
}

/// Evaluates a `/topk` request against one registry — the
/// single-registry server's handler, and what each shard runs for the
/// router's fan-out. Engines are resolved in sorted, deduplicated name
/// order (so failures are deterministic), evaluated one by one, and
/// merged with [`merge_topk`].
pub(crate) fn topk_over_registry(
    registry: &EngineRegistry,
    body: &str,
) -> Result<String, UxmError> {
    let request = TopKRequest::from_json_str(body)?;
    let names = match &request.engines {
        Some(explicit) => {
            let mut names = explicit.clone();
            names.sort();
            names.dedup();
            names
        }
        None => known_names(registry),
    };
    let mut all = Vec::new();
    for name in &names {
        let engine = registry.fetch(name)?;
        let response = engine.run(&request.query)?;
        all.extend(response.answers.iter().map(|a| TopKAnswer {
            engine: name.clone(),
            probability: a.probability,
            mappings: a.mappings.clone(),
            matches: a.matches.clone(),
        }));
    }
    Ok(topk_body(&merge_topk(all, request.k), request.k))
}

// ---------------------------------------------------------------------
// cross-shard aggregates

/// The parsed body of `POST /aggregate`:
/// `{"engines":[…],"query":{…}}` with `engines` optional (default: all
/// known engines) and `query` required to be an aggregate query.
pub struct AggregateRequest {
    /// Explicit engine names, when given.
    pub engines: Option<Vec<String>>,
    /// The aggregate query to run on each engine.
    pub query: Query,
    /// The query's aggregate function.
    pub func: AggFunc,
}

impl AggregateRequest {
    /// Strict parse (unknown members rejected, like the rest of the
    /// wire format).
    pub fn from_json_str(body: &str) -> Result<AggregateRequest, UxmError> {
        let parsed = Json::parse(body)?;
        let Json::Obj(members) = &parsed else {
            return Err(UxmError::Json("aggregate body must be an object".into()));
        };
        let mut engines = None;
        let mut query = None;
        for (key, value) in members {
            match key.as_str() {
                "engines" => {
                    let arr = value.as_arr().ok_or_else(|| {
                        UxmError::Json("engines must be an array of names".into())
                    })?;
                    engines = Some(
                        arr.iter()
                            .map(|v| {
                                v.as_str().map(str::to_string).ok_or_else(|| {
                                    UxmError::Json("engine names must be strings".into())
                                })
                            })
                            .collect::<Result<Vec<String>, _>>()?,
                    );
                }
                "query" => query = Some(Query::from_json(value)?),
                other => {
                    return Err(UxmError::Json(format!(
                        "unknown aggregate member {other:?}"
                    )))
                }
            }
        }
        let query =
            query.ok_or_else(|| UxmError::Json("aggregate body needs a \"query\"".into()))?;
        let Query::Aggregate { func, .. } = &query else {
            return Err(UxmError::InvalidQuery(
                "the /aggregate endpoint needs an aggregate query (kind \"aggregate\")".into(),
            ));
        };
        let func = *func;
        Ok(AggregateRequest {
            engines,
            query,
            func,
        })
    }

    /// The canonical sub-request body the router sends each shard:
    /// the same query with an explicit (sorted) engine subset.
    fn sub_body(&self, names: &[String]) -> String {
        Json::Obj(vec![
            (
                "engines".into(),
                Json::Arr(names.iter().map(|n| Json::str(n.as_str())).collect()),
            ),
            ("query".into(), self.query.to_json()),
        ])
        .to_string()
    }
}

/// One engine's contribution to a `/aggregate` response, as parsed
/// back by the router's cross-shard merge.
struct AggregateEntry {
    /// The engine name (the merge's fold order is name ascending).
    name: String,
    /// That engine's marginal, `null` on the wire when undefined.
    marginal: Option<f64>,
    /// The entry's canonical JSON, re-emitted verbatim in the merged
    /// body.
    json: Json,
}

impl AggregateEntry {
    fn from_json(value: &Json) -> Result<AggregateEntry, UxmError> {
        let name = value
            .get("engine")
            .and_then(Json::as_str)
            .ok_or_else(|| UxmError::Json("aggregate entry needs an \"engine\" name".into()))?
            .to_string();
        let marginal = match value.get("marginal") {
            None | Some(Json::Null) => None,
            Some(v) => Some(
                v.as_f64()
                    .ok_or_else(|| UxmError::Json("marginal must be a number or null".into()))?,
            ),
        };
        Ok(AggregateEntry {
            name,
            marginal,
            json: value.clone(),
        })
    }
}

/// Renders the canonical `/aggregate` response body
/// (`{"engines":[…],"func":…,"value":…}`). `entries` must already be
/// in engine-name-ascending order; `value` is the fleet-wide merge of
/// their marginals, folded in that same order by [`merge_marginals`] —
/// recomputed from the entries at every hop, **never** from per-shard
/// partial values, so a sharded response is byte-identical to an
/// unsharded one. Documented in `docs/wire-format.md`.
fn aggregate_body(entries: Vec<AggregateEntry>, func: AggFunc) -> String {
    let value = merge_marginals(func, entries.iter().map(|e| e.marginal));
    Json::Obj(vec![
        (
            "engines".into(),
            Json::Arr(entries.into_iter().map(|e| e.json).collect()),
        ),
        ("func".into(), Json::str(func.wire_name())),
        ("value".into(), opt_num(value)),
    ])
    .to_string()
}

/// Evaluates a `/aggregate` request against one registry — the
/// single-registry server's handler, and what each shard runs for the
/// router's fan-out. Engines are resolved in sorted, deduplicated name
/// order, evaluated one by one, and their marginals folded with
/// [`merge_marginals`] in that order.
pub(crate) fn aggregate_over_registry(
    registry: &EngineRegistry,
    body: &str,
) -> Result<String, UxmError> {
    let request = AggregateRequest::from_json_str(body)?;
    let names = match &request.engines {
        Some(explicit) => {
            let mut names = explicit.clone();
            names.sort();
            names.dedup();
            names
        }
        None => known_names(registry),
    };
    let mut entries = Vec::new();
    for name in &names {
        let engine = registry.fetch(name)?;
        let response = engine.run(&request.query)?;
        let agg = response.aggregate.ok_or_else(|| {
            UxmError::Internal("aggregate query returned no aggregate block".into())
        })?;
        entries.push(AggregateEntry {
            name: name.clone(),
            marginal: agg.marginal,
            json: Json::Obj(vec![
                ("engine".into(), Json::str(name.as_str())),
                ("marginal".into(), opt_num(agg.marginal)),
                ("rows".into(), agg.rows_json()),
            ]),
        });
    }
    Ok(aggregate_body(entries, request.func))
}

/// Every name `registry` can serve: resident engines plus hydratable
/// snapshots, sorted and deduplicated.
fn known_names(registry: &EngineRegistry) -> Vec<String> {
    let mut names = registry.names();
    names.extend(registry.snapshot_names());
    names.sort();
    names.dedup();
    names
}

// ---------------------------------------------------------------------
// the router

/// Router tuning knobs.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// How many shards to spawn at start. Must be at least 1.
    pub shards: usize,
    /// Virtual nodes per shard on the [`Ring`]. Default 64.
    pub vnodes: usize,
    /// The per-shard registry configuration — note
    /// [`RegistryConfig::memory_budget`] is **per shard**, so a cluster
    /// budget of B over N shards wants `B / N` here.
    pub registry: RegistryConfig,
    /// The per-shard server configuration (workers, queue depth,
    /// per-client cap enforced on the forwarded identity, …).
    /// `trust_forwarded_client` is forced on and `debug_panic_route`
    /// off, whatever this says.
    pub shard_server: ServerConfig,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            shards: 2,
            vnodes: 64,
            registry: RegistryConfig::default(),
            shard_server: ServerConfig {
                workers: 2,
                ..ServerConfig::default()
            },
        }
    }
}

/// Pooled internal connections kept per shard.
const POOL_MAX: usize = 8;

/// One shard: a loopback [`Server`] over its own registry.
struct Shard {
    /// Monotonic, never reused — removed ids stay dead.
    id: u64,
    registry: Arc<EngineRegistry>,
    addr: SocketAddr,
    handle: Mutex<Option<ServerHandle>>,
    /// Idle internal connections, reused across requests.
    pool: Mutex<Vec<Client>>,
}

/// The shard set and its ring, swapped atomically per epoch.
struct State {
    shards: Vec<Arc<Shard>>,
    ring: Ring,
}

/// The scatter-gather front over N shard registries. See the module
/// docs for the architecture; construct with [`Router::start`], serve
/// with [`Router::bind`], reshape with [`Router::add_shard`] /
/// [`Router::remove_shard`].
pub struct Router {
    snapshot_dir: PathBuf,
    config: RouterConfig,
    state: RwLock<State>,
    next_id: AtomicU64,
}

impl Router {
    /// Spawns `config.shards` shard servers over `snapshot_dir` (every
    /// shard hydrates from the same directory) and builds the ring.
    pub fn start(
        snapshot_dir: impl Into<PathBuf>,
        config: RouterConfig,
    ) -> Result<Arc<Router>, UxmError> {
        if config.shards == 0 {
            return Err(UxmError::Usage("a router needs at least 1 shard".into()));
        }
        let vnodes = config.vnodes.max(1);
        let router = Arc::new(Router {
            snapshot_dir: snapshot_dir.into(),
            config,
            state: RwLock::new(State {
                shards: Vec::new(),
                ring: Ring::build(&[], vnodes),
            }),
            next_id: AtomicU64::new(0),
        });
        let mut shards = Vec::new();
        for _ in 0..router.config.shards {
            shards.push(router.spawn_shard()?);
        }
        let ids: Vec<u64> = shards.iter().map(|s| s.id).collect();
        *sync::write(&router.state) = State {
            ring: Ring::build(&ids, vnodes),
            shards,
        };
        Ok(router)
    }

    /// Binds the front server on `addr`. The front faces real clients,
    /// so `trust_forwarded_client` is forced **off** regardless of
    /// `config`; the router itself forwards each client's identity on
    /// the internal hop.
    pub fn bind(
        self: &Arc<Self>,
        addr: impl std::net::ToSocketAddrs + std::fmt::Display,
        mut config: ServerConfig,
    ) -> Result<Server, UxmError> {
        config.trust_forwarded_client = false;
        Server::bind_handler(
            Arc::new(RouterHandler {
                router: Arc::clone(self),
            }),
            addr,
            config,
        )
    }

    fn spawn_shard(&self) -> Result<Arc<Shard>, UxmError> {
        let id = self.next_id.fetch_add(1, Ordering::SeqCst);
        let registry = Arc::new(
            EngineRegistry::with_config(self.config.registry.clone())
                .snapshot_dir(&self.snapshot_dir),
        );
        let mut server_config = self.config.shard_server.clone();
        server_config.trust_forwarded_client = true;
        server_config.debug_panic_route = false;
        let server = Server::bind_handler(
            Arc::new(RegistryHandler {
                registry: Arc::clone(&registry),
            }),
            "127.0.0.1:0",
            server_config,
        )?;
        let addr = server.local_addr();
        let handle = server.start();
        Ok(Arc::new(Shard {
            id,
            registry,
            addr,
            handle: Mutex::new(Some(handle)),
            pool: Mutex::new(Vec::new()),
        }))
    }

    /// Current shard ids, ascending.
    pub fn shard_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = sync::read(&self.state)
            .shards
            .iter()
            .map(|s| s.id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Current shard count.
    pub fn shard_count(&self) -> usize {
        sync::read(&self.state).shards.len()
    }

    /// `(id, loopback address)` per shard — how tests reach a shard
    /// server directly.
    pub fn shard_addrs(&self) -> Vec<(u64, SocketAddr)> {
        let mut addrs: Vec<(u64, SocketAddr)> = sync::read(&self.state)
            .shards
            .iter()
            .map(|s| (s.id, s.addr))
            .collect();
        addrs.sort_unstable_by_key(|&(id, _)| id);
        addrs
    }

    /// Per-shard registry accounting, ascending by shard id — what the
    /// soak harness samples for per-shard footprint and shed counters.
    pub fn shard_stats(&self) -> Vec<(u64, RegistryStats)> {
        let mut stats: Vec<(u64, RegistryStats)> = sync::read(&self.state)
            .shards
            .iter()
            .map(|s| (s.id, s.registry.stats()))
            .collect();
        stats.sort_unstable_by_key(|&(id, _)| id);
        stats
    }

    /// The shard currently owning `name`.
    pub fn owner(&self, name: &str) -> u64 {
        sync::read(&self.state).ring.owner(name)
    }

    /// Every name the cluster can serve (resident anywhere or
    /// snapshotted), sorted.
    pub fn known_names(&self) -> Vec<String> {
        let st = sync::read(&self.state);
        let mut names: Vec<String> = st.shards.iter().flat_map(|s| s.registry.names()).collect();
        if let Some(first) = st.shards.first() {
            names.extend(first.registry.snapshot_names());
        }
        drop(st);
        names.sort();
        names.dedup();
        names
    }

    /// Adds one shard: spawns it, rebuilds the ring, and drops
    /// now-misplaced residents so the new owners re-hydrate from the
    /// shared snapshot directory on first touch. Returns the new
    /// shard's id.
    pub fn add_shard(&self) -> Result<u64, UxmError> {
        let shard = self.spawn_shard()?;
        let id = shard.id;
        let mut st = sync::write(&self.state);
        st.shards.push(shard);
        let ids: Vec<u64> = st.shards.iter().map(|s| s.id).collect();
        st.ring = Ring::build(&ids, self.config.vnodes.max(1));
        Self::drop_misplaced(&st);
        Ok(id)
    }

    /// Removes shard `id`: rebuilds the ring without it, drops
    /// misplaced residents, then shuts the shard's server down
    /// (gracefully, outside the state lock). In-flight requests routed
    /// to the removed shard fail the internal hop and are retried once
    /// against the fresh ring. The last shard cannot be removed.
    pub fn remove_shard(&self, id: u64) -> Result<(), UxmError> {
        let removed = {
            let mut st = sync::write(&self.state);
            if st.shards.len() <= 1 {
                return Err(UxmError::Usage("cannot remove the last shard".into()));
            }
            let Some(pos) = st.shards.iter().position(|s| s.id == id) else {
                return Err(UxmError::ShardUnavailable {
                    shard: id,
                    reason: "no such shard".into(),
                });
            };
            let removed = st.shards.remove(pos);
            let ids: Vec<u64> = st.shards.iter().map(|s| s.id).collect();
            st.ring = Ring::build(&ids, self.config.vnodes.max(1));
            Self::drop_misplaced(&st);
            removed
        };
        // Drop pooled connections first so the server's workers see the
        // closes and exit promptly.
        sync::lock(&removed.pool).clear();
        if let Some(handle) = sync::lock(&removed.handle).take() {
            handle.shutdown();
        }
        Ok(())
    }

    /// Shuts every shard server down (graceful). The front server's
    /// handle is owned by the caller of [`Router::bind`].
    pub fn shutdown(&self) {
        let shards: Vec<Arc<Shard>> = sync::read(&self.state).shards.clone();
        for shard in shards {
            sync::lock(&shard.pool).clear();
            if let Some(handle) = sync::lock(&shard.handle).take() {
                handle.shutdown();
            }
        }
    }

    /// Evicts residents from shards that no longer own them under the
    /// current ring (the re-hydration half of a rebalance is lazy).
    fn drop_misplaced(st: &State) {
        for shard in &st.shards {
            for name in shard.registry.names() {
                if st.ring.owner(&name) != shard.id {
                    shard.registry.remove(&name);
                }
            }
        }
    }

    // -- the internal hop ---------------------------------------------

    /// One request over the internal hop to `shard`, forwarding the
    /// original client identity. Pools idle connections; a transport
    /// failure on a (possibly stale) pooled connection is retried once
    /// on a fresh one before reporting the shard unavailable.
    fn call_shard(
        &self,
        shard: &Shard,
        path: &str,
        body: Option<&str>,
        forward: Option<IpAddr>,
    ) -> Result<(u16, String), UxmError> {
        let unavailable = |e: &UxmError| UxmError::ShardUnavailable {
            shard: shard.id,
            reason: e.to_string(),
        };
        for fresh in [false, true] {
            let pooled = if fresh {
                None
            } else {
                sync::lock(&shard.pool).pop()
            };
            let mut client = match pooled {
                Some(client) => client,
                None => match Client::connect(shard.addr) {
                    Ok(client) => client,
                    Err(e) if fresh => return Err(unavailable(&e)),
                    Err(_) => continue,
                },
            };
            client.set_forward_client(forward);
            let result = match body {
                Some(body) => client.post(path, body),
                None => client.get(path),
            };
            match result {
                Ok((status, response)) => {
                    // Only pool connections the shard will keep open:
                    // error paths (shed, rebind refusal, panic) close.
                    if status < 400 {
                        let mut pool = sync::lock(&shard.pool);
                        if pool.len() < POOL_MAX {
                            client.set_forward_client(None);
                            pool.push(client);
                        }
                    }
                    return Ok((status, response));
                }
                Err(e) if fresh => return Err(unavailable(&e)),
                Err(_) => {}
            }
        }
        unreachable!("second attempt returns")
    }

    /// `POST /query/<engine>`: forward to the owner, relay verbatim.
    /// A hop failure re-resolves the ring once (the owner may have
    /// just been removed) before reporting 503.
    fn proxy_query(&self, name: &str, body: &str, forward: Option<IpAddr>) -> (u16, String) {
        let path = format!("/query/{name}");
        let mut last = None;
        for _ in 0..2 {
            let shard = {
                let st = sync::read(&self.state);
                let id = st.ring.owner(name);
                st.shards
                    .iter()
                    .find(|s| s.id == id)
                    .cloned()
                    .expect("ring ids are current shards")
            };
            match self.call_shard(&shard, &path, Some(body), forward) {
                Ok(response) => return response,
                Err(e) => last = Some(e),
            }
        }
        let e = last.expect("loop ran");
        (status_for(&e), error_body(&e))
    }

    /// `POST /batch`: split by owner, fan out concurrently, splice the
    /// per-shard results back in request order. A shard-level refusal
    /// (non-200) fails the whole batch with that shard's typed body; a
    /// hop failure retries the whole batch once against the fresh ring.
    fn proxy_batch(&self, body: &str, forward: Option<IpAddr>) -> (u16, String) {
        let inner = || -> Result<(u16, String), UxmError> {
            let parsed = Json::parse(body)?;
            let items = parsed
                .as_arr()
                .ok_or_else(|| UxmError::Json("batch body must be a JSON array".into()))?;
            let queries = items
                .iter()
                .map(BatchQuery::from_json)
                .collect::<Result<Vec<_>, _>>()?;
            let mut last = None;
            'attempt: for _ in 0..2 {
                // Group request indices by owning shard, preserving
                // request order within each group.
                let mut groups: Vec<(Arc<Shard>, Vec<usize>)> = Vec::new();
                {
                    let st = sync::read(&self.state);
                    for (i, q) in queries.iter().enumerate() {
                        let id = st.ring.owner(&q.engine);
                        match groups.iter_mut().find(|(s, _)| s.id == id) {
                            Some((_, idxs)) => idxs.push(i),
                            None => {
                                let shard = st
                                    .shards
                                    .iter()
                                    .find(|s| s.id == id)
                                    .cloned()
                                    .expect("ring ids are current shards");
                                groups.push((shard, vec![i]));
                            }
                        }
                    }
                }
                let bodies: Vec<String> = groups
                    .iter()
                    .map(|(_, idxs)| {
                        Json::Arr(idxs.iter().map(|&i| queries[i].to_json()).collect()).to_string()
                    })
                    .collect();
                let results: Vec<Result<(u16, String), UxmError>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = groups
                        .iter()
                        .zip(&bodies)
                        .map(|((shard, _), sub)| {
                            scope
                                .spawn(move || self.call_shard(shard, "/batch", Some(sub), forward))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| {
                            h.join().unwrap_or_else(|_| {
                                Err(UxmError::Internal("batch fan-out thread panicked".into()))
                            })
                        })
                        .collect()
                });
                let mut out: Vec<Option<Json>> = (0..queries.len()).map(|_| None).collect();
                for ((shard, idxs), result) in groups.iter().zip(results) {
                    match result {
                        Err(e @ UxmError::ShardUnavailable { .. }) => {
                            last = Some(e);
                            continue 'attempt;
                        }
                        Err(e) => return Err(e),
                        Ok((200, sub_body)) => {
                            let sub = Json::parse(&sub_body)?;
                            let list =
                                sub.get("results").and_then(Json::as_arr).ok_or_else(|| {
                                    UxmError::Internal(format!(
                                        "shard {} returned a malformed batch body",
                                        shard.id
                                    ))
                                })?;
                            if list.len() != idxs.len() {
                                return Err(UxmError::Internal(format!(
                                    "shard {} returned {} results for {} requests",
                                    shard.id,
                                    list.len(),
                                    idxs.len()
                                )));
                            }
                            for (&i, item) in idxs.iter().zip(list) {
                                out[i] = Some(item.clone());
                            }
                        }
                        // A shard-level refusal fails the whole batch
                        // with the shard's own typed body.
                        Ok(other) => return Ok(other),
                    }
                }
                let results: Vec<Json> = out.into_iter().map(|r| r.expect("spliced")).collect();
                return Ok((
                    200,
                    Json::Obj(vec![("results".into(), Json::Arr(results))]).to_string(),
                ));
            }
            Err(last.expect("attempts exhausted"))
        };
        match inner() {
            Ok(response) => response,
            Err(e) => (status_for(&e), error_body(&e)),
        }
    }

    /// `POST /topk`: validate names against the cluster's known set,
    /// fan explicit per-shard subsets out, and [`merge_topk`] the
    /// shard-local top-k's — exact, because the pinned order is total
    /// and selection under it is associative.
    fn proxy_topk(&self, body: &str, forward: Option<IpAddr>) -> (u16, String) {
        let inner = || -> Result<(u16, String), UxmError> {
            let request = TopKRequest::from_json_str(body)?;
            let known = self.known_names();
            let names = match &request.engines {
                Some(explicit) => {
                    let mut names = explicit.clone();
                    names.sort();
                    names.dedup();
                    // Deterministic parity with the single registry,
                    // which fetches in sorted order and fails on the
                    // first missing name.
                    if let Some(missing) = names.iter().find(|n| !known.contains(n)) {
                        return Err(UxmError::UnknownEngine(missing.clone()));
                    }
                    names
                }
                None => known,
            };
            let mut last = None;
            'attempt: for _ in 0..2 {
                let mut groups: Vec<(Arc<Shard>, Vec<String>)> = Vec::new();
                {
                    let st = sync::read(&self.state);
                    for name in &names {
                        let id = st.ring.owner(name);
                        match groups.iter_mut().find(|(s, _)| s.id == id) {
                            Some((_, group)) => group.push(name.clone()),
                            None => {
                                let shard = st
                                    .shards
                                    .iter()
                                    .find(|s| s.id == id)
                                    .cloned()
                                    .expect("ring ids are current shards");
                                groups.push((shard, vec![name.clone()]));
                            }
                        }
                    }
                }
                let bodies: Vec<String> = groups.iter().map(|(_, g)| request.sub_body(g)).collect();
                let results: Vec<Result<(u16, String), UxmError>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = groups
                        .iter()
                        .zip(&bodies)
                        .map(|((shard, _), sub)| {
                            scope.spawn(move || self.call_shard(shard, "/topk", Some(sub), forward))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| {
                            h.join().unwrap_or_else(|_| {
                                Err(UxmError::Internal("topk fan-out thread panicked".into()))
                            })
                        })
                        .collect()
                });
                let mut all = Vec::new();
                for ((shard, _), result) in groups.iter().zip(results) {
                    match result {
                        Err(e @ UxmError::ShardUnavailable { .. }) => {
                            last = Some(e);
                            continue 'attempt;
                        }
                        Err(e) => return Err(e),
                        Ok((200, sub_body)) => {
                            let sub = Json::parse(&sub_body)?;
                            let answers =
                                sub.get("answers").and_then(Json::as_arr).ok_or_else(|| {
                                    UxmError::Internal(format!(
                                        "shard {} returned a malformed topk body",
                                        shard.id
                                    ))
                                })?;
                            for a in answers {
                                all.push(TopKAnswer::from_json(a)?);
                            }
                        }
                        Ok(other) => return Ok(other),
                    }
                }
                let merged = merge_topk(all, request.k);
                return Ok((200, topk_body(&merged, request.k)));
            }
            Err(last.expect("attempts exhausted"))
        };
        match inner() {
            Ok(response) => response,
            Err(e) => (status_for(&e), error_body(&e)),
        }
    }

    /// `POST /aggregate`: validate names against the cluster's known
    /// set, fan explicit per-shard subsets out, concatenate the
    /// per-engine entries in name-ascending order, and recompute the
    /// fleet value with [`merge_marginals`] over that order — never
    /// from per-shard partial values — so the merged body is
    /// byte-identical to a single registry's.
    fn proxy_aggregate(&self, body: &str, forward: Option<IpAddr>) -> (u16, String) {
        let inner = || -> Result<(u16, String), UxmError> {
            let request = AggregateRequest::from_json_str(body)?;
            let known = self.known_names();
            let names = match &request.engines {
                Some(explicit) => {
                    let mut names = explicit.clone();
                    names.sort();
                    names.dedup();
                    if let Some(missing) = names.iter().find(|n| !known.contains(n)) {
                        return Err(UxmError::UnknownEngine(missing.clone()));
                    }
                    names
                }
                None => known,
            };
            let mut last = None;
            'attempt: for _ in 0..2 {
                let mut groups: Vec<(Arc<Shard>, Vec<String>)> = Vec::new();
                {
                    let st = sync::read(&self.state);
                    for name in &names {
                        let id = st.ring.owner(name);
                        match groups.iter_mut().find(|(s, _)| s.id == id) {
                            Some((_, group)) => group.push(name.clone()),
                            None => {
                                let shard = st
                                    .shards
                                    .iter()
                                    .find(|s| s.id == id)
                                    .cloned()
                                    .expect("ring ids are current shards");
                                groups.push((shard, vec![name.clone()]));
                            }
                        }
                    }
                }
                let bodies: Vec<String> = groups.iter().map(|(_, g)| request.sub_body(g)).collect();
                let results: Vec<Result<(u16, String), UxmError>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = groups
                        .iter()
                        .zip(&bodies)
                        .map(|((shard, _), sub)| {
                            scope.spawn(move || {
                                self.call_shard(shard, "/aggregate", Some(sub), forward)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| {
                            h.join().unwrap_or_else(|_| {
                                Err(UxmError::Internal(
                                    "aggregate fan-out thread panicked".into(),
                                ))
                            })
                        })
                        .collect()
                });
                let mut all: Vec<AggregateEntry> = Vec::new();
                for ((shard, _), result) in groups.iter().zip(results) {
                    match result {
                        Err(e @ UxmError::ShardUnavailable { .. }) => {
                            last = Some(e);
                            continue 'attempt;
                        }
                        Err(e) => return Err(e),
                        Ok((200, sub_body)) => {
                            let sub = Json::parse(&sub_body)?;
                            let engines =
                                sub.get("engines").and_then(Json::as_arr).ok_or_else(|| {
                                    UxmError::Internal(format!(
                                        "shard {} returned a malformed aggregate body",
                                        shard.id
                                    ))
                                })?;
                            for e in engines {
                                all.push(AggregateEntry::from_json(e)?);
                            }
                        }
                        Ok(other) => return Ok(other),
                    }
                }
                all.sort_by(|a, b| a.name.cmp(&b.name));
                return Ok((200, aggregate_body(all, request.func)));
            }
            Err(last.expect("attempts exhausted"))
        };
        match inner() {
            Ok(response) => response,
            Err(e) => (status_for(&e), error_body(&e)),
        }
    }

    // -- observability ------------------------------------------------

    /// `GET /shards`: the ring layout plus per-shard ownership and
    /// registry accounting (footprint, evictions, hydrations, shed
    /// hydrations).
    fn shards_body(&self) -> String {
        let (shards, ring) = {
            let st = sync::read(&self.state);
            (st.shards.clone(), st.ring.clone())
        };
        let known = self.known_names();
        let mut entries: Vec<(u64, Json)> = shards
            .iter()
            .map(|shard| {
                let stats = shard.registry.stats();
                let owned: Vec<Json> = known
                    .iter()
                    .filter(|n| ring.owner(n) == shard.id)
                    .map(|n| Json::str(n.as_str()))
                    .collect();
                let entry = Json::Obj(vec![
                    ("addr".into(), Json::str(shard.addr.to_string())),
                    ("engines".into(), Json::Arr(owned)),
                    ("evictions".into(), Json::uint(stats.evictions)),
                    (
                        "footprint_bytes".into(),
                        Json::uint(stats.footprint_bytes() as u64),
                    ),
                    ("hydrations".into(), Json::uint(stats.hydrations)),
                    ("id".into(), Json::uint(shard.id)),
                    (
                        "resident_bytes".into(),
                        Json::uint(stats.resident_bytes as u64),
                    ),
                    (
                        "resident_engines".into(),
                        Json::uint(stats.resident_engines as u64),
                    ),
                    ("shed_hydrations".into(), Json::uint(stats.shed_hydrations)),
                    (
                        "unreclaimed_bytes".into(),
                        Json::uint(stats.unreclaimed_bytes as u64),
                    ),
                ]);
                (shard.id, entry)
            })
            .collect();
        entries.sort_by_key(|&(id, _)| id);
        Json::Obj(vec![
            (
                "ring".into(),
                Json::Obj(vec![
                    ("points".into(), Json::uint(ring.points() as u64)),
                    ("vnodes".into(), Json::uint(ring.vnodes() as u64)),
                ]),
            ),
            (
                "shards".into(),
                Json::Arr(entries.into_iter().map(|(_, e)| e).collect()),
            ),
        ])
        .to_string()
    }

    /// The router's `GET /stats`: the front server's own counters plus
    /// each shard's full stats body (fetched over the internal hop) as
    /// a per-shard breakdown. An unreachable shard reports `null`.
    fn stats_body(&self, stats: &ServerStats) -> String {
        let front = stats.to_json();
        let server = front.get("server").cloned().unwrap_or(Json::Null);
        let shards: Vec<Arc<Shard>> = sync::read(&self.state).shards.clone();
        let mut entries: Vec<(u64, Json)> = shards
            .iter()
            .map(|shard| {
                let body = match self.call_shard(shard, "/stats", None, None) {
                    Ok((200, body)) => Json::parse(&body).unwrap_or(Json::Null),
                    _ => Json::Null,
                };
                (
                    shard.id,
                    Json::Obj(vec![
                        ("id".into(), Json::uint(shard.id)),
                        ("stats".into(), body),
                    ]),
                )
            })
            .collect();
        entries.sort_by_key(|&(id, _)| id);
        Json::Obj(vec![
            ("server".into(), server),
            (
                "shards".into(),
                Json::Arr(entries.into_iter().map(|(_, e)| e).collect()),
            ),
        ])
        .to_string()
    }

    /// The router's `GET /engines`: every known name with its owning
    /// shard and whether the owner has it resident, plus cluster-wide
    /// totals.
    fn engines_body(&self) -> String {
        let (shards, ring) = {
            let st = sync::read(&self.state);
            (st.shards.clone(), st.ring.clone())
        };
        let known = self.known_names();
        let entries: Vec<Json> = known
            .iter()
            .map(|name| {
                let owner = ring.owner(name);
                let resident = shards
                    .iter()
                    .find(|s| s.id == owner)
                    .is_some_and(|s| s.registry.get(name).is_some());
                Json::Obj(vec![
                    ("name".into(), Json::str(name.as_str())),
                    ("resident".into(), Json::Bool(resident)),
                    ("shard".into(), Json::uint(owner)),
                ])
            })
            .collect();
        let mut evictions = 0u64;
        let mut resident_bytes = 0u64;
        let mut unreclaimed = 0u64;
        for shard in &shards {
            let stats = shard.registry.stats();
            evictions += stats.evictions;
            resident_bytes += stats.resident_bytes as u64;
            unreclaimed += stats.unreclaimed_bytes as u64;
        }
        Json::Obj(vec![
            ("engines".into(), Json::Arr(entries)),
            ("evictions".into(), Json::uint(evictions)),
            ("resident_bytes".into(), Json::uint(resident_bytes)),
            ("unreclaimed_bytes".into(), Json::uint(unreclaimed)),
        ])
        .to_string()
    }
}

/// The front server's routing: scatter-gather over the shard set.
struct RouterHandler {
    router: Arc<Router>,
}

impl Handler for RouterHandler {
    fn handle(
        &self,
        stats: &ServerStats,
        _config: &ServerConfig,
        client: Option<IpAddr>,
        request: &Request,
    ) -> (u16, String) {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/shards") => (200, self.router.shards_body()),
            ("GET", "/stats") => (200, self.router.stats_body(stats)),
            ("GET", "/engines") => (200, self.router.engines_body()),
            ("POST", "/topk") => self.router.proxy_topk(&request.body, client),
            ("POST", "/aggregate") => self.router.proxy_aggregate(&request.body, client),
            ("POST", "/batch") => self.router.proxy_batch(&request.body, client),
            ("POST", path) if path.starts_with("/query/") => {
                let name = &path["/query/".len()..];
                if name.is_empty() {
                    let e = UxmError::UnknownEngine(String::new());
                    return (status_for(&e), error_body(&e));
                }
                self.router.proxy_query(name, &request.body, client)
            }
            ("GET" | "POST", _) => {
                let e = UxmError::Usage(format!(
                    "no route {} {} (POST /query/<engine>, POST /batch, POST /topk, \
                     POST /aggregate, GET /engines|/stats|/shards|/healthz)",
                    request.method, request.path
                ));
                (404, error_body(&e))
            }
            (method, _) => {
                let e = UxmError::Usage(format!("method {method} not allowed"));
                (405, error_body(&e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_ownership_is_deterministic() {
        let a = Ring::build(&[0, 1, 2], 64);
        let b = Ring::build(&[0, 1, 2], 64);
        for name in ["orders", "po", "e0001", "catalog", ""] {
            assert_eq!(a.owner(name), b.owner(name));
        }
        assert_eq!(a.points(), 3 * 64);
        assert_eq!(a.vnodes(), 64);
    }

    #[test]
    fn ring_spreads_names_across_shards() {
        let ring = Ring::build(&[0, 1, 2, 3], 64);
        let mut per_shard = [0usize; 4];
        for i in 0..1000 {
            per_shard[ring.owner(&format!("e{i:04}")) as usize] += 1;
        }
        for (id, &count) in per_shard.iter().enumerate() {
            assert!(
                count > 50,
                "shard {id} owns only {count}/1000 names: {per_shard:?}"
            );
        }
    }

    #[test]
    fn ring_growth_moves_only_some_names() {
        let before = Ring::build(&[0, 1], 64);
        let after = Ring::build(&[0, 1, 2], 64);
        let names: Vec<String> = (0..1000).map(|i| format!("e{i:04}")).collect();
        let moved = names
            .iter()
            .filter(|n| before.owner(n) != after.owner(n))
            .count();
        // Consistent hashing: only the arcs claimed by the new shard
        // move — roughly 1/3 of names, never anywhere near all of them.
        assert!(moved > 0, "a new shard must claim something");
        assert!(
            moved < 600,
            "{moved}/1000 names moved — ring is not consistent"
        );
        // Names that moved all moved *to* the new shard.
        for name in &names {
            if before.owner(name) != after.owner(name) {
                assert_eq!(after.owner(name), 2, "{name} moved to an old shard");
            }
        }
    }

    #[test]
    fn merge_topk_pins_the_total_order() {
        let answer = |engine: &str, p: f64, mapping: u32| TopKAnswer {
            engine: engine.into(),
            probability: p,
            mappings: vec![MappingId(mapping)],
            matches: vec![],
        };
        let merged = merge_topk(
            vec![
                answer("b", 0.5, 0),
                answer("a", 0.5, 1),
                answer("a", 0.5, 0),
                answer("c", 0.9, 7),
                answer("b", 0.1, 2),
            ],
            4,
        );
        let order: Vec<(String, f64, u32)> = merged
            .iter()
            .map(|a| (a.engine.clone(), a.probability, a.mappings[0].0))
            .collect();
        // Probability desc, then engine asc, then mappings asc; k=4
        // cuts the 0.1 tail.
        assert_eq!(
            order,
            vec![
                ("c".into(), 0.9, 7),
                ("a".into(), 0.5, 0),
                ("a".into(), 0.5, 1),
                ("b".into(), 0.5, 0),
            ]
        );
    }

    #[test]
    fn merge_topk_is_associative() {
        // top-k(union) == top-k(top-k(left) ∪ top-k(right)) — the
        // property the cross-shard merge relies on.
        let mk = |engine: &str, p: f64, m: u32| TopKAnswer {
            engine: engine.into(),
            probability: p,
            mappings: vec![MappingId(m)],
            matches: vec![],
        };
        let left = vec![mk("a", 0.9, 0), mk("a", 0.4, 1), mk("a", 0.2, 2)];
        let right = vec![mk("b", 0.8, 0), mk("b", 0.4, 1), mk("b", 0.1, 2)];
        let k = 3;
        let mut union = left.clone();
        union.extend(right.clone());
        let direct = merge_topk(union, k);
        let mut pre = merge_topk(left, k);
        pre.extend(merge_topk(right, k));
        let nested = merge_topk(pre, k);
        assert_eq!(direct, nested);
    }

    #[test]
    fn topk_answer_round_trips_canonically() {
        let a = TopKAnswer {
            engine: "orders".into(),
            probability: 0.125,
            mappings: vec![MappingId(0), MappingId(3)],
            matches: vec![TwigMatch {
                nodes: vec![DocNodeId(1), DocNodeId(5)],
            }],
        };
        let body = a.to_json().to_string();
        assert_eq!(
            body,
            "{\"engine\":\"orders\",\"mappings\":[0,3],\"matches\":[[1,5]],\"probability\":0.125}"
        );
        let back = TopKAnswer::from_json(&Json::parse(&body).unwrap()).unwrap();
        assert_eq!(back, a);
        assert_eq!(back.to_json().to_string(), body);
    }

    #[test]
    fn topk_request_is_strict() {
        assert!(TopKRequest::from_json_str("[]").is_err());
        assert!(TopKRequest::from_json_str("{}").is_err());
        assert!(TopKRequest::from_json_str("{\"bogus\":1}").is_err());
        // A non-topk query is rejected with invalid-query.
        let q = Query::ptq(uxm_twig::TwigPattern::parse("A//B").unwrap());
        let body = Json::Obj(vec![("query".into(), q.to_json())]).to_string();
        assert!(matches!(
            TopKRequest::from_json_str(&body),
            Err(UxmError::InvalidQuery(_))
        ));
        let q = Query::topk(uxm_twig::TwigPattern::parse("A//B").unwrap(), 5);
        let body = Json::Obj(vec![
            ("engines".into(), Json::Arr(vec![Json::str("x")])),
            ("query".into(), q.to_json()),
        ])
        .to_string();
        let parsed = TopKRequest::from_json_str(&body).unwrap();
        assert_eq!(parsed.k, 5);
        assert_eq!(parsed.engines.as_deref(), Some(&["x".to_string()][..]));
    }
}
