//! Aggregate answers over PTQ matches: COUNT / SUM / MIN / MAX, reported
//! per mapping and as a probability-weighted marginal.
//!
//! An aggregate query ([`crate::api::Query::Aggregate`]) evaluates its
//! twig pattern exactly like a PTQ — same relevance filtering, same
//! rewriting, same matcher, any of the three backends — and then folds
//! each mapping's match set into one scalar:
//!
//! * the **subject node** is the pattern's spine leaf (root, then last
//!   child, repeatedly) — the node a caller writes last, e.g. `UnitPrice`
//!   in `PO/Line/UnitPrice`;
//! * `count` is the number of matches (always defined, `0` for an empty
//!   match set);
//! * `sum` / `min` / `max` fold the *numeric* subject values, one per
//!   match, parsed by [`uxm_twig::resolve::numeric`] (trimmed, finite);
//!   a match whose subject value is absent or non-numeric contributes
//!   nothing, and a mapping with **no** numeric contribution has a null
//!   value;
//! * the **marginal** is `Σ pᵢ·vᵢ / Σ pᵢ` over the rows whose value is
//!   defined — the expected aggregate under the mapping distribution,
//!   renormalized over the mass that defines one. It is null when no row
//!   does.
//!
//! Every number here is a plain `f64` folded in a pinned order (rows in
//! answer order, marginal in row order), so all three backends — and a
//! router merging shards — produce byte-identical canonical JSON.

use crate::api::Answer;
use crate::json::Json;
use crate::mapping::MappingId;
use std::fmt;
use uxm_twig::resolve::numeric;
use uxm_twig::{TwigMatch, TwigPattern};
use uxm_xml::Document;

/// The aggregate function of a [`crate::api::Query::Aggregate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggFunc {
    /// Number of matches.
    Count,
    /// Sum of the numeric subject values, in match order.
    Sum,
    /// Minimum numeric subject value.
    Min,
    /// Maximum numeric subject value.
    Max,
}

impl AggFunc {
    /// The wire name (`count` / `sum` / `min` / `max`).
    pub fn wire_name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }

    /// Parses a wire name.
    pub fn from_wire(name: &str) -> Option<AggFunc> {
        match name {
            "count" => Some(AggFunc::Count),
            "sum" => Some(AggFunc::Sum),
            "min" => Some(AggFunc::Min),
            "max" => Some(AggFunc::Max),
            _ => None,
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.wire_name())
    }
}

/// One mapping's aggregate value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AggRow {
    /// The mapping this row was evaluated under.
    pub mapping: MappingId,
    /// That mapping's probability.
    pub probability: f64,
    /// The folded value; `None` when the fold is undefined (no numeric
    /// subject value among the matches). `count` is always defined.
    pub value: Option<f64>,
}

/// The aggregate block of a [`crate::api::QueryResponse`].
#[derive(Clone, Debug, PartialEq)]
pub struct AggregateResult {
    /// The function that was folded.
    pub func: AggFunc,
    /// Per-mapping rows, in answer order (ascending mapping id).
    pub rows: Vec<AggRow>,
    /// `Σ p·v / Σ p` over the rows with a defined value; `None` when no
    /// row defines one.
    pub marginal: Option<f64>,
}

impl AggregateResult {
    /// Packages rows with their marginal.
    pub fn new(func: AggFunc, rows: Vec<AggRow>) -> AggregateResult {
        let marginal = marginal_of(&rows);
        AggregateResult {
            func,
            rows,
            marginal,
        }
    }

    /// The canonical JSON form (alphabetical keys; undefined values are
    /// `null`).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("func".into(), Json::str(self.func.wire_name())),
            ("marginal".into(), opt_num(self.marginal)),
            ("rows".into(), self.rows_json()),
        ])
    }

    /// The rows alone as a canonical JSON array — the `/aggregate`
    /// endpoint embeds this in its per-engine entries.
    pub fn rows_json(&self) -> Json {
        Json::Arr(
            self.rows
                .iter()
                .map(|r| {
                    Json::Obj(vec![
                        ("mapping".into(), Json::uint(r.mapping.0 as u64)),
                        ("probability".into(), Json::Num(r.probability)),
                        ("value".into(), opt_num(r.value)),
                    ])
                })
                .collect(),
        )
    }
}

/// An optional number as canonical JSON (`null` when undefined).
pub(crate) fn opt_num(v: Option<f64>) -> Json {
    match v {
        Some(v) => Json::Num(v),
        None => Json::Null,
    }
}

/// Folds one mapping's match set (the per-row semantics above). The
/// **single** implementation every backend funnels through — the VM's
/// `agg-fold` op and the recursive evaluators' post-pass both call it,
/// which is what makes their aggregates byte-identical.
pub(crate) fn row_value(
    func: AggFunc,
    matches: &[TwigMatch],
    subject: uxm_twig::PatternNodeId,
    doc: &Document,
) -> Option<f64> {
    if func == AggFunc::Count {
        return Some(matches.len() as f64);
    }
    let mut values = matches
        .iter()
        .filter_map(|m| doc.text(m.nodes[subject.idx()]).and_then(numeric));
    let first = values.next()?;
    Some(match func {
        AggFunc::Count => unreachable!("handled above"),
        AggFunc::Sum => values.fold(first, |acc, v| acc + v),
        AggFunc::Min => values.fold(first, f64::min),
        AggFunc::Max => values.fold(first, f64::max),
    })
}

/// Per-mapping rows from shaped answers (the recursive-backend path; the
/// compiled backend produces the same rows inside the VM).
pub(crate) fn rows_of(
    func: AggFunc,
    answers: &[Answer],
    pattern: &TwigPattern,
    doc: &Document,
) -> Vec<AggRow> {
    let subject = pattern.spine_leaf();
    answers
        .iter()
        .map(|a| AggRow {
            mapping: a.mappings[0],
            probability: a.probability,
            value: row_value(func, &a.matches, subject, doc),
        })
        .collect()
}

/// `Σ p·v / Σ p` over the rows with a defined value, folded in row
/// order; `None` when no row defines a value (or no defining row carries
/// mass).
pub fn marginal_of(rows: &[AggRow]) -> Option<f64> {
    let mut mass = 0.0;
    let mut acc = 0.0;
    let mut any = false;
    for r in rows {
        if let Some(v) = r.value {
            any = true;
            mass += r.probability;
            acc += r.probability * v;
        }
    }
    (any && mass > 0.0).then(|| acc / mass)
}

/// The cross-shard / cross-engine merge: folds per-engine marginals (in
/// the caller's pinned order — engine name ascending on the wire) into
/// one fleet-wide value. `count` and `sum` add (engines hold disjoint
/// documents), `min` / `max` take the extremum; null marginals are
/// skipped, and the merge of nothing is null. Associative and
/// order-insensitive up to f64 rounding; the name-ascending fold order
/// pins the bytes. Documented in `docs/wire-format.md`.
pub fn merge_marginals(
    func: AggFunc,
    marginals: impl IntoIterator<Item = Option<f64>>,
) -> Option<f64> {
    let mut merged: Option<f64> = None;
    for m in marginals {
        let Some(v) = m else { continue };
        merged = Some(match merged {
            None => v,
            Some(acc) => match func {
                AggFunc::Count | AggFunc::Sum => acc + v,
                AggFunc::Min => acc.min(v),
                AggFunc::Max => acc.max(v),
            },
        });
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use uxm_twig::PatternNodeId;
    use uxm_xml::parse_document;

    fn matches(nodes: &[u32]) -> Vec<TwigMatch> {
        nodes
            .iter()
            .map(|&n| TwigMatch {
                nodes: vec![uxm_xml::DocNodeId(n)],
            })
            .collect()
    }

    #[test]
    fn row_values_follow_documented_semantics() {
        let doc = parse_document("<a><p>10</p><p>7.5</p><p>x</p></a>").unwrap();
        let subject = PatternNodeId(0);
        let ps = doc.nodes_with_label("p");
        let all = matches(&[ps[0].0, ps[1].0, ps[2].0]);
        assert_eq!(row_value(AggFunc::Count, &all, subject, &doc), Some(3.0));
        assert_eq!(row_value(AggFunc::Sum, &all, subject, &doc), Some(17.5));
        assert_eq!(row_value(AggFunc::Min, &all, subject, &doc), Some(7.5));
        assert_eq!(row_value(AggFunc::Max, &all, subject, &doc), Some(10.0));
        // Empty match set: count 0, everything else undefined.
        assert_eq!(row_value(AggFunc::Count, &[], subject, &doc), Some(0.0));
        assert_eq!(row_value(AggFunc::Sum, &[], subject, &doc), None);
        // Only non-numeric subjects: undefined.
        let texty = matches(&[ps[2].0]);
        assert_eq!(row_value(AggFunc::Min, &texty, subject, &doc), None);
        assert_eq!(row_value(AggFunc::Count, &texty, subject, &doc), Some(1.0));
    }

    #[test]
    fn marginal_renormalizes_over_defined_rows() {
        let row = |id: u32, p: f64, v: Option<f64>| AggRow {
            mapping: MappingId(id),
            probability: p,
            value: v,
        };
        let rows = [
            row(0, 0.5, Some(10.0)),
            row(1, 0.25, None),
            row(2, 0.25, Some(2.0)),
        ];
        // (0.5·10 + 0.25·2) / (0.5 + 0.25) = 5.5 / 0.75
        let m = marginal_of(&rows).unwrap();
        assert!((m - 5.5 / 0.75).abs() < 1e-12, "{m}");
        assert_eq!(marginal_of(&[row(0, 0.5, None)]), None);
        assert_eq!(marginal_of(&[]), None);
        assert_eq!(marginal_of(&[row(0, 0.0, Some(3.0))]), None, "no mass");
    }

    #[test]
    fn merge_adds_or_takes_extremum() {
        let ms = [Some(3.0), None, Some(1.5)];
        assert_eq!(merge_marginals(AggFunc::Sum, ms), Some(4.5));
        assert_eq!(merge_marginals(AggFunc::Count, ms), Some(4.5));
        assert_eq!(merge_marginals(AggFunc::Min, ms), Some(1.5));
        assert_eq!(merge_marginals(AggFunc::Max, ms), Some(3.0));
        assert_eq!(merge_marginals(AggFunc::Sum, [None, None]), None);
        assert_eq!(merge_marginals(AggFunc::Sum, []), None);
    }

    #[test]
    fn json_shape_is_canonical() {
        let result = AggregateResult::new(
            AggFunc::Sum,
            vec![
                AggRow {
                    mapping: MappingId(0),
                    probability: 0.5,
                    value: Some(3.0),
                },
                AggRow {
                    mapping: MappingId(2),
                    probability: 0.5,
                    value: None,
                },
            ],
        );
        let text = result.to_json().to_string();
        assert_eq!(
            text,
            "{\"func\":\"sum\",\"marginal\":3,\"rows\":[\
             {\"mapping\":0,\"probability\":0.5,\"value\":3},\
             {\"mapping\":2,\"probability\":0.5,\"value\":null}]}"
        );
        assert_eq!(Json::parse(&text).unwrap().to_string(), text);
    }

    #[test]
    fn wire_names_roundtrip() {
        for f in [AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max] {
            assert_eq!(AggFunc::from_wire(f.wire_name()), Some(f));
        }
        assert_eq!(AggFunc::from_wire("avg"), None);
    }
}
