//! Mapping compression and storage accounting (paper Algorithm 1 step 5
//! and the compression-ratio metric of §VI).
//!
//! After the block tree is built, each mapping's correspondences that are
//! covered by some c-block containing the mapping are replaced by a pointer
//! to that block (`remove_duplicate_corr`). Coverage is chosen greedily in
//! pre-order, so outermost (largest) blocks win.
//!
//! Storage model (bytes): a correspondence is two `u32`s (8 B), a block or
//! mapping pointer is 4 B, a probability is 8 B, a hash entry is its path
//! length plus a 4 B node reference.

use crate::block_tree::BlockTree;
use crate::mapping::{MappingId, PossibleMappings};
use uxm_xml::{Schema, SchemaNodeId};

/// One mapping after compression: block pointers plus residual pairs.
#[derive(Clone, Debug, PartialEq)]
pub struct CompressedMapping {
    /// Blocks whose correspondence sets this mapping inherits.
    pub blocks: Vec<crate::block::BlockId>,
    /// Correspondences not covered by any pointed-to block.
    pub residual: Vec<(SchemaNodeId, SchemaNodeId)>,
}

/// The compressed representation of a mapping set.
#[derive(Clone, Debug)]
pub struct CompressedMappings {
    /// Per mapping (indexed by [`MappingId`]): its compressed form.
    pub mappings: Vec<CompressedMapping>,
}

/// Compresses every mapping against the block tree (`remove_duplicate_corr`).
pub fn compress(pm: &PossibleMappings, tree: &BlockTree) -> CompressedMappings {
    let target = &pm.target;
    let preorder: Vec<SchemaNodeId> = target.subtree(target.root());
    let mappings = pm
        .ids()
        .map(|mid| compress_one(pm, tree, target, &preorder, mid))
        .collect();
    CompressedMappings { mappings }
}

fn compress_one(
    pm: &PossibleMappings,
    tree: &BlockTree,
    target: &Schema,
    preorder: &[SchemaNodeId],
    mid: MappingId,
) -> CompressedMapping {
    let mapping = pm.mapping(mid);
    let mut covered = vec![false; target.len()];
    let mut blocks = Vec::new();
    for &t in preorder {
        if covered[t.idx()] {
            continue;
        }
        // A block at t containing this mapping covers t's whole subtree.
        let found = tree
            .blocks_at(t)
            .iter()
            .find(|&&bid| tree.block(bid).mappings.binary_search(&mid).is_ok());
        if let Some(&bid) = found {
            blocks.push(bid);
            for n in target.subtree(t) {
                covered[n.idx()] = true;
            }
        }
    }
    let residual = mapping
        .pairs
        .iter()
        .filter(|&&(_, t)| !covered[t.idx()])
        .copied()
        .collect();
    CompressedMapping { blocks, residual }
}

impl CompressedMappings {
    /// Reconstructs a mapping's full pair list (must equal the original).
    pub fn reconstruct(
        &self,
        tree: &BlockTree,
        mid: MappingId,
    ) -> Vec<(SchemaNodeId, SchemaNodeId)> {
        let cm = &self.mappings[mid.idx()];
        let mut pairs = cm.residual.clone();
        for &bid in &cm.blocks {
            pairs.extend_from_slice(&tree.block(bid).corrs);
        }
        pairs.sort_by_key(|&(s, t)| (t, s));
        pairs.dedup();
        pairs
    }
}

/// Bytes to store the mapping set verbatim: pairs at 8 B + probability 8 B
/// per mapping.
pub fn plain_bytes(pm: &PossibleMappings) -> usize {
    pm.iter().map(|(_, m)| m.pairs.len() * 8 + 8).sum()
}

/// Bytes for the block tree + hash table + compressed mappings (the
/// paper's `B`).
pub fn compressed_bytes(pm: &PossibleMappings, tree: &BlockTree, cm: &CompressedMappings) -> usize {
    let block_bytes: usize = tree
        .blocks()
        .iter()
        .map(|b| b.corrs.len() * 8 + b.mappings.len() * 4)
        .sum();
    // One 4 B list slot per block in its node's list.
    let node_list_bytes = tree.block_count() * 4;
    let hash_bytes: usize = (0..pm.target.len() as u32)
        .map(uxm_xml::SchemaNodeId)
        .filter(|&t| tree.has_blocks(t))
        .map(|t| pm.target.path(t).len() + 4)
        .sum();
    let mapping_bytes: usize = cm
        .mappings
        .iter()
        .map(|m| m.blocks.len() * 4 + m.residual.len() * 8 + 8)
        .sum();
    block_bytes + node_list_bytes + hash_bytes + mapping_bytes
}

/// The paper's compression ratio `1 - B / |M|_plain`. Positive when the
/// block tree saves space; can be negative when blocks are too rare.
pub fn compression_ratio(pm: &PossibleMappings, tree: &BlockTree) -> f64 {
    let cm = compress(pm, tree);
    let plain = plain_bytes(pm) as f64;
    if plain == 0.0 {
        return 0.0;
    }
    1.0 - compressed_bytes(pm, tree, &cm) as f64 / plain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_tree::BlockTreeConfig;
    use uxm_matching::Matcher;
    use uxm_xml::Schema;

    fn overlapping_mappings() -> PossibleMappings {
        // A shared 9-element subtree plus one varying leaf, over 30
        // mappings — the regime the paper exploits (o-ratio near 1).
        let source = Schema::parse_outline("O(A0 A1 A2 A3 A4 A5 A6 A7 A8 B1 B2)").unwrap();
        let target = Schema::parse_outline("R(X(C1 C2 C3 C4 C5 C6 C7 C8) Y)").unwrap();
        let s = |l: &str| source.nodes_with_label(l)[0];
        let t = |l: &str| target.nodes_with_label(l)[0];
        let mut shared = vec![(s("A0"), t("X"))];
        for i in 1..=8 {
            shared.push((s(&format!("A{i}")), t(&format!("C{i}"))));
        }
        let mut sets = Vec::new();
        for i in 0..30 {
            let y_src = if i % 2 == 0 { "B1" } else { "B2" };
            let mut pairs = shared.clone();
            pairs.push((s(y_src), t("Y")));
            sets.push((pairs, 1.0 + i as f64 * 0.01));
        }
        PossibleMappings::from_pairs(source, target, sets)
    }

    #[test]
    fn reconstruction_is_lossless() {
        let pm = overlapping_mappings();
        let tree = BlockTree::build(&pm.target.clone(), &pm, &BlockTreeConfig::default());
        let cm = compress(&pm, &tree);
        for (mid, m) in pm.iter() {
            assert_eq!(cm.reconstruct(&tree, mid), m.pairs, "mapping {mid:?}");
        }
    }

    #[test]
    fn shared_subtree_is_compressed_via_blocks() {
        let pm = overlapping_mappings();
        let tree = BlockTree::build(&pm.target.clone(), &pm, &BlockTreeConfig::default());
        let cm = compress(&pm, &tree);
        // All four mappings share the X-subtree block: pointer, not pairs.
        for m in &cm.mappings {
            assert!(!m.blocks.is_empty(), "expected a block pointer");
            assert!(m.residual.len() < 4, "residual should shrink");
        }
    }

    #[test]
    fn compression_ratio_positive_on_overlapping_set() {
        let pm = overlapping_mappings();
        let tree = BlockTree::build(&pm.target.clone(), &pm, &BlockTreeConfig::default());
        let ratio = compression_ratio(&pm, &tree);
        assert!(ratio > 0.0, "ratio {ratio}");
        assert!(ratio < 1.0);
    }

    #[test]
    fn ratio_survives_tau_extremes() {
        // Blocks shared by all mappings survive even tau = 1.0; the ratio
        // stays positive on this heavily-overlapping set at both extremes.
        let pm = overlapping_mappings();
        for tau in [0.2, 1.0] {
            let tree = BlockTree::build(
                &pm.target.clone(),
                &pm,
                &BlockTreeConfig {
                    tau,
                    ..BlockTreeConfig::default()
                },
            );
            let ratio = compression_ratio(&pm, &tree);
            assert!(ratio > 0.0, "tau={tau}: ratio {ratio}");
        }
    }

    #[test]
    fn disjoint_mappings_gain_nothing() {
        // Mappings sharing no correspondences produce no c-blocks beyond
        // unshareable ones; compression cannot help (ratio <= 0).
        let source = Schema::parse_outline("O(A1 A2 A3)").unwrap();
        let target = Schema::parse_outline("R(X)").unwrap();
        let s = |l: &str| source.nodes_with_label(l)[0];
        let t = |l: &str| target.nodes_with_label(l)[0];
        let pm = PossibleMappings::from_pairs(
            source.clone(),
            target.clone(),
            vec![
                (vec![(s("A1"), t("X"))], 1.0),
                (vec![(s("A2"), t("X"))], 1.0),
                (vec![(s("A3"), t("X"))], 1.0),
            ],
        );
        let tree = BlockTree::build(
            &target,
            &pm,
            &BlockTreeConfig {
                tau: 0.5,
                ..BlockTreeConfig::default()
            },
        );
        assert_eq!(tree.block_count(), 0, "no group reaches support 2");
        assert!(compression_ratio(&pm, &tree) <= 0.0);
    }

    #[test]
    fn lossless_on_matcher_derived_mappings() {
        let source =
            Schema::parse_outline("Order(Buyer(Name Contact(EMail)) POLine(LineNo Quantity))")
                .unwrap();
        let target =
            Schema::parse_outline("PO(Purchaser(PName PContact(PEMail)) Line(No Qty))").unwrap();
        let matching = Matcher::context().match_schemas(&source, &target);
        let pm = PossibleMappings::top_h(&matching, 16);
        let tree = BlockTree::build(&target, &pm, &BlockTreeConfig::default());
        let cm = compress(&pm, &tree);
        for (mid, m) in pm.iter() {
            assert_eq!(cm.reconstruct(&tree, mid), m.pairs);
        }
    }

    #[test]
    fn plain_bytes_counts_pairs() {
        let pm = overlapping_mappings();
        // 30 mappings x (10 pairs x 8 + 8) = 2640
        assert_eq!(plain_bytes(&pm), 2640);
    }
}
