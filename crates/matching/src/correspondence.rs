//! Correspondences and schema matchings (the paper's `U`).

use uxm_xml::{Schema, SchemaNodeId};

/// A scored edge between one source and one target element (the paper's
/// `(x, y)` with its similarity score).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Correspondence {
    /// Source schema element.
    pub source: SchemaNodeId,
    /// Target schema element.
    pub target: SchemaNodeId,
    /// Similarity score in `(0, 1]`.
    pub score: f64,
}

/// A schema matching `U`: two schemas plus the scored correspondence set a
/// matcher produced between them.
///
/// Owns clones of both schemas — they are small (≤ ~1.1k elements in the
/// paper's largest dataset) and this keeps the pipeline free of lifetimes.
#[derive(Clone, Debug)]
pub struct SchemaMatching {
    /// The source schema `S`.
    pub source: Schema,
    /// The target schema `T`.
    pub target: Schema,
    /// Scored correspondences, sorted by (target, source).
    corrs: Vec<Correspondence>,
}

impl SchemaMatching {
    /// Builds a matching, normalizing the correspondence order.
    pub fn new(source: Schema, target: Schema, mut corrs: Vec<Correspondence>) -> Self {
        corrs.sort_by_key(|c| (c.target, c.source));
        corrs.dedup_by_key(|c| (c.target, c.source));
        SchemaMatching {
            source,
            target,
            corrs,
        }
    }

    /// All correspondences, sorted by (target, source).
    #[inline]
    pub fn correspondences(&self) -> &[Correspondence] {
        &self.corrs
    }

    /// The number of correspondences (Table II's "Cap.").
    #[inline]
    pub fn capacity(&self) -> usize {
        self.corrs.len()
    }

    /// True when the matcher found nothing.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.corrs.is_empty()
    }

    /// Correspondences whose target is `t`, in source order.
    pub fn candidates_for_target(&self, t: SchemaNodeId) -> &[Correspondence] {
        let lo = self.corrs.partition_point(|c| c.target < t);
        let hi = self.corrs.partition_point(|c| c.target <= t);
        &self.corrs[lo..hi]
    }

    /// Correspondences whose source is `s` (linear scan; rarely hot).
    pub fn candidates_for_source(&self, s: SchemaNodeId) -> Vec<Correspondence> {
        self.corrs
            .iter()
            .filter(|c| c.source == s)
            .copied()
            .collect()
    }

    /// The score of `(s, t)` if that correspondence exists.
    pub fn score(&self, s: SchemaNodeId, t: SchemaNodeId) -> Option<f64> {
        self.candidates_for_target(t)
            .iter()
            .find(|c| c.source == s)
            .map(|c| c.score)
    }

    /// Distinct source elements participating in the matching.
    pub fn matched_sources(&self) -> Vec<SchemaNodeId> {
        let mut v: Vec<SchemaNodeId> = self.corrs.iter().map(|c| c.source).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Distinct target elements participating in the matching.
    pub fn matched_targets(&self) -> Vec<SchemaNodeId> {
        let mut v: Vec<SchemaNodeId> = self.corrs.iter().map(|c| c.target).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> SchemaNodeId {
        SchemaNodeId(i)
    }

    fn matching() -> SchemaMatching {
        let src = Schema::parse_outline("A(B C D)").unwrap();
        let tgt = Schema::parse_outline("X(Y Z)").unwrap();
        SchemaMatching::new(
            src,
            tgt,
            vec![
                Correspondence {
                    source: s(1),
                    target: s(1),
                    score: 0.9,
                },
                Correspondence {
                    source: s(2),
                    target: s(1),
                    score: 0.8,
                },
                Correspondence {
                    source: s(3),
                    target: s(2),
                    score: 0.7,
                },
                // duplicate to be removed:
                Correspondence {
                    source: s(1),
                    target: s(1),
                    score: 0.9,
                },
            ],
        )
    }

    #[test]
    fn dedup_and_capacity() {
        let m = matching();
        assert_eq!(m.capacity(), 3);
        assert!(!m.is_empty());
    }

    #[test]
    fn candidates_by_target_are_contiguous() {
        let m = matching();
        let cands = m.candidates_for_target(s(1));
        assert_eq!(cands.len(), 2);
        assert!(cands.iter().all(|c| c.target == s(1)));
        assert_eq!(m.candidates_for_target(s(2)).len(), 1);
        assert_eq!(m.candidates_for_target(s(0)).len(), 0);
    }

    #[test]
    fn score_lookup() {
        let m = matching();
        assert_eq!(m.score(s(1), s(1)), Some(0.9));
        assert_eq!(m.score(s(9), s(1)), None);
    }

    #[test]
    fn matched_node_sets() {
        let m = matching();
        assert_eq!(m.matched_sources(), vec![s(1), s(2), s(3)]);
        assert_eq!(m.matched_targets(), vec![s(1), s(2)]);
    }
}
