//! Structural (context) similarity between schema elements.
//!
//! COMA++'s *context* strategy scores an element pair by the similarity of
//! their root-to-element paths; the *fragment* strategy looks only at the
//! local fragment (the element and its children). Both are approximated
//! here on top of the name similarities in [`crate::similarity`].

use crate::similarity::{name_similarity_sig, NameSig};
use uxm_xml::{Schema, SchemaNodeId};

/// Path-context similarity: average positional name similarity of the two
/// root-to-element label paths, aligned from the leaf upward.
pub fn path_similarity(s: &Schema, sn: SchemaNodeId, t: &Schema, tn: SchemaNodeId) -> f64 {
    let ss: Vec<NameSig> = s.ids().map(|i| NameSig::new(s.label(i))).collect();
    let ts: Vec<NameSig> = t.ids().map(|i| NameSig::new(t.label(i))).collect();
    path_similarity_sig(s, &ss, sn, t, &ts, tn)
}

/// [`path_similarity`] over precomputed per-element signatures (one entry
/// per schema node, indexed by node id).
pub fn path_similarity_sig(
    s: &Schema,
    s_sigs: &[NameSig],
    sn: SchemaNodeId,
    t: &Schema,
    t_sigs: &[NameSig],
    tn: SchemaNodeId,
) -> f64 {
    let ps = ids_to_root(s, sn);
    let pt = ids_to_root(t, tn);
    let n = ps.len().min(pt.len());
    if n == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..n {
        total += name_similarity_sig(&s_sigs[ps[i].idx()], &t_sigs[pt[i].idx()]);
    }
    // Penalize depth mismatch mildly.
    let depth_penalty = ps.len().max(pt.len()) as f64;
    total / depth_penalty
}

/// Fragment similarity: name similarity of the elements' child label sets
/// (greedy best-pair average). Leaf pairs score 1 to stay neutral.
pub fn fragment_similarity(s: &Schema, sn: SchemaNodeId, t: &Schema, tn: SchemaNodeId) -> f64 {
    let ss: Vec<NameSig> = s.ids().map(|i| NameSig::new(s.label(i))).collect();
    let ts: Vec<NameSig> = t.ids().map(|i| NameSig::new(t.label(i))).collect();
    fragment_similarity_sig(s, &ss, sn, t, &ts, tn)
}

/// [`fragment_similarity`] over precomputed per-element signatures.
pub fn fragment_similarity_sig(
    s: &Schema,
    s_sigs: &[NameSig],
    sn: SchemaNodeId,
    t: &Schema,
    t_sigs: &[NameSig],
    tn: SchemaNodeId,
) -> f64 {
    let cs = s.children(sn);
    let ct = t.children(tn);
    if cs.is_empty() && ct.is_empty() {
        return 1.0;
    }
    if cs.is_empty() || ct.is_empty() {
        return 0.0;
    }
    let one_way =
        |xs: &[SchemaNodeId], x_sigs: &[NameSig], ys: &[SchemaNodeId], y_sigs: &[NameSig]| {
            xs.iter()
                .map(|x| {
                    ys.iter()
                        .map(|y| name_similarity_sig(&x_sigs[x.idx()], &y_sigs[y.idx()]))
                        .fold(0.0, f64::max)
                })
                .sum::<f64>()
                / xs.len() as f64
        };
    0.5 * (one_way(cs, s_sigs, ct, t_sigs) + one_way(ct, t_sigs, cs, s_sigs))
}

fn ids_to_root(schema: &Schema, node: SchemaNodeId) -> Vec<SchemaNodeId> {
    let mut out = Vec::new();
    let mut cur = Some(node);
    while let Some(n) = cur {
        out.push(n);
        cur = schema.parent(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_similarity_favours_same_context() {
        let s =
            Schema::parse_outline("Order(BillToParty(ContactName) Seller(ContactName))").unwrap();
        let t = Schema::parse_outline("ORDER(INVOICE_PARTY(CONTACT_NAME))").unwrap();
        let bill_cn = s.nodes_with_label("ContactName")[0];
        let seller_cn = s.nodes_with_label("ContactName")[1];
        let icn = t.nodes_with_label("CONTACT_NAME")[0];
        let sim_bill = path_similarity(&s, bill_cn, &t, icn);
        let sim_seller = path_similarity(&s, seller_cn, &t, icn);
        // BillToParty is closer to INVOICE_PARTY than Seller is, so the
        // bill path should score at least as well.
        assert!(sim_bill >= sim_seller, "{sim_bill} vs {sim_seller}");
        assert!(sim_bill > 0.3);
    }

    #[test]
    fn fragment_similarity_leafs_neutral() {
        let s = Schema::parse_outline("A(B)").unwrap();
        let t = Schema::parse_outline("X(Y)").unwrap();
        let b = s.nodes_with_label("B")[0];
        let y = t.nodes_with_label("Y")[0];
        assert_eq!(fragment_similarity(&s, b, &t, y), 1.0);
    }

    #[test]
    fn fragment_similarity_compares_children() {
        let s = Schema::parse_outline("Order(Line(Qty Price))").unwrap();
        let t = Schema::parse_outline("ORDER(LINE(QUANTITY UNIT_PRICE) MISC(Foo))").unwrap();
        let line_s = s.nodes_with_label("Line")[0];
        let line_t = t.nodes_with_label("LINE")[0];
        let misc_t = t.nodes_with_label("MISC")[0];
        let good = fragment_similarity(&s, line_s, &t, line_t);
        let bad = fragment_similarity(&s, line_s, &t, misc_t);
        assert!(good > bad, "{good} vs {bad}");
    }

    #[test]
    fn leaf_vs_internal_is_zero_fragment() {
        let s = Schema::parse_outline("A(B)").unwrap();
        let t = Schema::parse_outline("X(Y(Z))").unwrap();
        let b = s.nodes_with_label("B")[0];
        let y = t.nodes_with_label("Y")[0];
        assert_eq!(fragment_similarity(&s, b, &t, y), 0.0);
    }
}
