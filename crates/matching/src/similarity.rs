//! String similarity measures for element names.
//!
//! Classic matcher ingredients (Rahm & Bernstein's survey, VLDB J. 2001):
//! normalized edit distance, trigram Dice coefficient, and token-set
//! similarity over camelCase/underscore-split tokens. The composite
//! [`name_similarity`] mirrors COMA++'s combined name matcher closely
//! enough for the downstream uncertainty-management algorithms.

/// Levenshtein edit distance between two strings (in `char`s).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Single-row DP.
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            let val = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = val;
        }
    }
    row[b.len()]
}

/// Edit similarity in `[0, 1]`: `1 - dist / max_len`.
pub fn edit_similarity(a: &str, b: &str) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let d = levenshtein(a, b) as f64;
    let m = a.chars().count().max(b.chars().count()) as f64;
    1.0 - d / m
}

/// Dice coefficient over character trigrams of the lowercased names.
///
/// Names shorter than 3 chars fall back to bigram/unigram grams.
pub fn trigram_similarity(a: &str, b: &str) -> f64 {
    let ga = grams_of(&normalize(a));
    let gb = grams_of(&normalize(b));
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    if ga.is_empty() || gb.is_empty() {
        return 0.0;
    }
    let mut shared = 0usize;
    let mut gb_pool = gb.clone();
    for g in &ga {
        if let Some(pos) = gb_pool.iter().position(|h| h == g) {
            gb_pool.swap_remove(pos);
            shared += 1;
        }
    }
    2.0 * shared as f64 / (ga.len() + gb.len()) as f64
}

/// Lowercases and strips separator characters so that naming styles
/// (`CONTACT_NAME` vs `ContactName`) compare equal character-wise.
pub fn normalize(s: &str) -> String {
    s.chars()
        .filter(|c| !matches!(c, '_' | '-' | '.' | ':' | ' '))
        .flat_map(char::to_lowercase)
        .collect()
}

fn grams_of(s: &str) -> Vec<String> {
    let lower: Vec<char> = s.chars().collect();
    let n = match lower.len() {
        0 => return Vec::new(),
        1 | 2 => lower.len(),
        _ => 3,
    };
    lower.windows(n).map(|w| w.iter().collect()).collect()
}

/// Splits an element name into lowercase word tokens at camelCase
/// boundaries, digits, and `_`/`-`/`.` separators.
///
/// `"CONTACT_NAME"` → `["contact", "name"]`, `"BuyerPartID"` →
/// `["buyer", "part", "id"]`.
pub fn tokenize(name: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let chars: Vec<char> = name.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c == '_' || c == '-' || c == '.' || c == ':' || c.is_whitespace() {
            if !cur.is_empty() {
                tokens.push(std::mem::take(&mut cur));
            }
            continue;
        }
        // camelCase boundary: lower→Upper, or Upper followed by lower while
        // in an uppercase run (e.g. "POLine" → "PO", "Line").
        if i > 0 && c.is_uppercase() {
            let prev = chars[i - 1];
            let next_lower = chars.get(i + 1).is_some_and(|n| n.is_lowercase());
            if (prev.is_lowercase() || prev.is_numeric() || (prev.is_uppercase() && next_lower))
                && !cur.is_empty()
            {
                tokens.push(std::mem::take(&mut cur));
            }
        } else if i > 0 && c.is_numeric() != chars[i - 1].is_numeric() && !cur.is_empty() {
            tokens.push(std::mem::take(&mut cur));
        }
        cur.extend(c.to_lowercase());
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// Expands well-known e-commerce abbreviations to their canonical token
/// (COMA++ ships an abbreviation dictionary for the same purpose), so that
/// `Qty` and `Quantity` compare as equal tokens.
pub fn expand_token(token: &str) -> &str {
    match token {
        "qty" => "quantity",
        "no" | "num" | "nr" => "number",
        "amt" => "amount",
        "ref" => "reference",
        "desc" => "description",
        "id" => "identifier",
        "ctry" => "country",
        "addr" => "address",
        "nm" => "name",
        "tot" => "total",
        "cust" => "customer",
        "org" => "organization",
        "tel" => "telephone",
        "up" => "unitprice",
        other => other,
    }
}

/// Greedy best-pair token-set similarity: average of the best
/// [`edit_similarity`] per token, weighted by token count.
pub fn token_similarity(a: &str, b: &str) -> f64 {
    token_similarity_pre(&tokenize(a), &tokenize(b))
}

/// Composite name similarity in `[0, 1]`: the weighted mean of token,
/// trigram, and edit similarity that the matcher uses.
pub fn name_similarity(a: &str, b: &str) -> f64 {
    name_similarity_sig(&NameSig::new(a), &NameSig::new(b))
}

/// Precomputed similarity signature of an element name. Matchers that
/// score many pairs should build one signature per element instead of
/// re-tokenizing per pair.
#[derive(Clone, Debug)]
pub struct NameSig {
    /// Lowercased, separator-free form (see [`normalize`]).
    pub norm: String,
    /// Word tokens (see [`tokenize`]).
    pub tokens: Vec<String>,
    /// Sorted character trigrams of `norm`.
    grams: Vec<String>,
}

impl NameSig {
    /// Builds the signature for one element name. The character-level
    /// components (edit, trigram) run on the abbreviation-expanded token
    /// concatenation, so `Qty` and `Quantity` are character-identical.
    pub fn new(name: &str) -> NameSig {
        let tokens = tokenize(name);
        let norm: String = tokens.iter().map(|t| expand_token(t)).collect();
        let mut grams = grams_of(&norm);
        grams.sort_unstable();
        NameSig {
            norm,
            tokens,
            grams,
        }
    }
}

/// [`name_similarity`] over precomputed signatures.
pub fn name_similarity_sig(a: &NameSig, b: &NameSig) -> f64 {
    0.5 * token_similarity_pre(&a.tokens, &b.tokens)
        + 0.3 * trigram_dice_sorted(&a.grams, &b.grams)
        + 0.2 * edit_similarity(&a.norm, &b.norm)
}

/// Token-set similarity over pre-tokenized names. Token pairs compare by
/// edit similarity after abbreviation expansion, with a floor for
/// prefix-truncated tokens (`pric` vs `price`).
fn token_similarity_pre(ta: &[String], tb: &[String]) -> f64 {
    if ta.is_empty() || tb.is_empty() {
        return f64::from(u8::from(ta.is_empty() && tb.is_empty()));
    }
    let one_way = |xs: &[String], ys: &[String]| -> f64 {
        xs.iter()
            .map(|x| ys.iter().map(|y| token_pair_sim(x, y)).fold(0.0, f64::max))
            .sum::<f64>()
            / xs.len() as f64
    };
    0.5 * (one_way(ta, tb) + one_way(tb, ta))
}

fn token_pair_sim(x: &str, y: &str) -> f64 {
    let (x, y) = (expand_token(x), expand_token(y));
    let edit = edit_similarity(x, y);
    // Truncation floor: one token a ≥3-char prefix of the other.
    let (short, long) = if x.len() <= y.len() { (x, y) } else { (y, x) };
    if short.len() >= 3 && long.starts_with(short) {
        edit.max(0.8)
    } else {
        edit
    }
}

/// Dice coefficient over two *sorted* gram multisets (linear merge).
fn trigram_dice_sorted(ga: &[String], gb: &[String]) -> f64 {
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    if ga.is_empty() || gb.is_empty() {
        return 0.0;
    }
    let mut shared = 0usize;
    let (mut i, mut j) = (0, 0);
    while i < ga.len() && j < gb.len() {
        match ga[i].cmp(&gb[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                shared += 1;
                i += 1;
                j += 1;
            }
        }
    }
    2.0 * shared as f64 / (ga.len() + gb.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "ab"), 2);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn edit_similarity_bounds() {
        assert_eq!(edit_similarity("", ""), 1.0);
        assert_eq!(edit_similarity("abc", "abc"), 1.0);
        assert_eq!(edit_similarity("abc", "xyz"), 0.0);
        let s = edit_similarity("ContactName", "CONTACT_NAME");
        assert!(s > 0.0 && s < 1.0);
    }

    #[test]
    fn trigram_symmetric_and_bounded() {
        for (a, b) in [
            ("ContactName", "ContactNome"),
            ("Order", "ORDER"),
            ("a", "ab"),
        ] {
            let s1 = trigram_similarity(a, b);
            let s2 = trigram_similarity(b, a);
            assert!((s1 - s2).abs() < 1e-12);
            assert!((0.0..=1.0).contains(&s1));
        }
        assert_eq!(trigram_similarity("abc", "abc"), 1.0);
    }

    #[test]
    fn tokenize_handles_styles() {
        assert_eq!(tokenize("CONTACT_NAME"), ["contact", "name"]);
        assert_eq!(tokenize("ContactName"), ["contact", "name"]);
        assert_eq!(tokenize("contactName"), ["contact", "name"]);
        assert_eq!(tokenize("BuyerPartID"), ["buyer", "part", "id"]);
        assert_eq!(tokenize("POLine"), ["po", "line"]);
        assert_eq!(tokenize("Address2"), ["address", "2"]);
        assert_eq!(tokenize(""), Vec::<String>::new());
    }

    #[test]
    fn abbreviations_compare_equal() {
        assert!(token_similarity("Qty", "Quantity") > 0.99);
        assert!(token_similarity("LineNo", "LineNumber") > 0.99);
        assert!(token_similarity("TotAmt", "TotalAmount") > 0.8);
        assert!(name_similarity("UnitPric", "UnitPrice") > 0.7);
    }

    #[test]
    fn token_similarity_sees_through_naming_styles() {
        let s = token_similarity("CONTACT_NAME", "ContactName");
        assert!(s > 0.99, "same tokens, different style: {s}");
        let s = token_similarity("SUPPLIER_PARTY", "SellerParty");
        assert!(s > 0.4, "related concept: {s}");
        let s = token_similarity("UnitPrice", "LineNo");
        assert!(s < 0.5, "unrelated: {s}");
    }

    #[test]
    fn name_similarity_orders_candidates_sensibly() {
        // The paper's Fig. 1 example: ICN should be closer to the
        // ContactName elements than to unrelated ones.
        let icn = "CONTACT_NAME";
        let close = name_similarity(icn, "ContactName");
        let far = name_similarity(icn, "Quantity");
        assert!(close > far);
        assert!(close > 0.8);
        assert!(far < 0.4);
    }

    #[test]
    fn name_similarity_in_unit_interval() {
        for (a, b) in [
            ("ORDER", "Order"),
            ("INVOICE_PARTY", "BillToParty"),
            ("x", "yyyyyyyyyy"),
            ("", ""),
        ] {
            let s = name_similarity(a, b);
            assert!((0.0..=1.0 + 1e-12).contains(&s), "{a} {b} -> {s}");
        }
    }
}
