//! # uxm-matching — COMA++-style composite schema matcher
//!
//! Produces a *schema matching*: a set of scored element correspondences
//! between a source and a target schema. This substitutes for the COMA++
//! matching results the paper consumes (its Table II datasets), preserving
//! the properties the downstream algorithms depend on: sparse candidate
//! sets with close scores among alternatives.

pub mod correspondence;
pub mod matcher;
pub mod similarity;
pub mod structural;

pub use correspondence::{Correspondence, SchemaMatching};
pub use matcher::{MatchStrategy, Matcher};
