//! The composite matcher producing a [`SchemaMatching`].
//!
//! For every (source, target) element pair the matcher combines name
//! similarity with a structural component chosen by [`MatchStrategy`]
//! (COMA++'s `f`/`c` options in Table II), thresholds the result, and caps
//! the number of candidates kept per target element. The output is the
//! sparse, close-scored correspondence set that the paper's algorithms
//! take as input.

use crate::correspondence::{Correspondence, SchemaMatching};
use crate::similarity::{name_similarity_sig, NameSig};
use crate::structural::{fragment_similarity_sig, path_similarity_sig};
use uxm_xml::Schema;

/// Calibrates a raw composite score into the band COMA++ reports.
///
/// COMA++ scores for surviving candidates are close together and coarse —
/// the paper's Fig. 1 shows `.75/.84/.83/.84` for competing candidates —
/// which is precisely what makes the matching *uncertain*. The raw
/// composite spread is therefore compressed into `[0.75, ~0.85]` and
/// rounded to two decimals; the resulting frequent ties spread top-h
/// mapping variation across the whole matching (high o-ratio, Table II).
fn calibrate(raw: f64, threshold: f64) -> f64 {
    let compressed = 0.75 + (raw - threshold) * 0.25;
    (compressed * 100.0).round() / 100.0
}

/// Which structural evidence the matcher mixes in (Table II's `opt`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchStrategy {
    /// `f`: local fragments — element name + child-set similarity.
    Fragment,
    /// `c`: contexts — element name + root path similarity.
    Context,
}

/// Configurable composite matcher.
#[derive(Clone, Debug)]
pub struct Matcher {
    /// Structural component selector.
    pub strategy: MatchStrategy,
    /// Keep pairs scoring at least this much.
    pub threshold: f64,
    /// Keep at most this many source candidates per target element.
    pub max_candidates_per_target: usize,
    /// Weight of the name component (structural gets `1 - weight`).
    pub name_weight: f64,
}

impl Default for Matcher {
    fn default() -> Self {
        Matcher {
            strategy: MatchStrategy::Context,
            threshold: 0.6,
            max_candidates_per_target: 4,
            name_weight: 0.7,
        }
    }
}

impl Matcher {
    /// A fragment-strategy matcher. COMA++'s fragment option produces
    /// sparser results than context (Table II), so the threshold is
    /// stricter.
    pub fn fragment() -> Self {
        Matcher {
            strategy: MatchStrategy::Fragment,
            threshold: 0.68,
            ..Matcher::default()
        }
    }

    /// A context-strategy matcher with default tuning.
    pub fn context() -> Self {
        Matcher::default()
    }

    /// Runs the matcher over all element pairs.
    ///
    /// Name signatures are precomputed per element, so the pair loop costs
    /// one signature comparison (short-string edit distances) per pair.
    pub fn match_schemas(&self, source: &Schema, target: &Schema) -> SchemaMatching {
        let src_sigs: Vec<NameSig> = source
            .ids()
            .map(|s| NameSig::new(source.label(s)))
            .collect();
        let tgt_sigs: Vec<NameSig> = target
            .ids()
            .map(|t| NameSig::new(target.label(t)))
            .collect();
        let mut corrs: Vec<Correspondence> = Vec::new();
        for t in target.ids() {
            let mut cands: Vec<Correspondence> = Vec::new();
            for s in source.ids() {
                let name = name_similarity_sig(&src_sigs[s.idx()], &tgt_sigs[t.idx()]);
                // Cheap rejection: structural evidence cannot lift a pair
                // whose name score is far below threshold.
                if name < self.threshold * 0.5 {
                    continue;
                }
                let structural = match self.strategy {
                    MatchStrategy::Fragment => {
                        fragment_similarity_sig(source, &src_sigs, s, target, &tgt_sigs, t)
                    }
                    MatchStrategy::Context => {
                        path_similarity_sig(source, &src_sigs, s, target, &tgt_sigs, t)
                    }
                };
                let raw = self.name_weight * name + (1.0 - self.name_weight) * structural;
                if raw >= self.threshold {
                    cands.push(Correspondence {
                        source: s,
                        target: t,
                        score: calibrate(raw, self.threshold),
                    });
                }
            }
            cands.sort_by(|a, b| b.score.total_cmp(&a.score));
            cands.truncate(self.max_candidates_per_target);
            corrs.extend(cands);
        }
        SchemaMatching::new(source.clone(), target.clone(), corrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Fig. 1 schemas (simplified).
    fn fig1() -> (Schema, Schema) {
        let source = Schema::parse_outline(
            "Order(BillToParty(OrderContact(ContactName) ReceivingContact(ContactName) \
             OtherContact(ContactName)) SellerParty(CONTACT_NAME))",
        )
        .unwrap();
        let target =
            Schema::parse_outline("ORDER(INVOICE_PARTY(CONTACT_NAME) SUPPLIER_PARTY(SCN))")
                .unwrap();
        (source, target)
    }

    #[test]
    fn finds_contact_name_candidates() {
        let (s, t) = fig1();
        let m = Matcher::context().match_schemas(&s, &t);
        let icn = t.nodes_with_label("CONTACT_NAME")[0];
        let cands = m.candidates_for_target(icn);
        assert!(
            cands.len() >= 3,
            "ICN should have several ContactName candidates, got {}",
            cands.len()
        );
        // Scores must be close (the paper's premise of uncertainty).
        let max = cands.iter().map(|c| c.score).fold(0.0, f64::max);
        let min = cands.iter().map(|c| c.score).fold(1.0, f64::min);
        assert!(
            max - min < 0.25,
            "candidate scores should be close: {min}..{max}"
        );
    }

    #[test]
    fn root_matches_root() {
        let (s, t) = fig1();
        let m = Matcher::context().match_schemas(&s, &t);
        let order_t = t.root();
        let cands = m.candidates_for_target(order_t);
        assert!(cands.iter().any(|c| c.source == s.root()));
    }

    #[test]
    fn candidates_capped() {
        let (s, t) = fig1();
        let matcher = Matcher {
            max_candidates_per_target: 2,
            ..Matcher::context()
        };
        let m = matcher.match_schemas(&s, &t);
        for tid in t.ids() {
            assert!(m.candidates_for_target(tid).len() <= 2);
        }
    }

    #[test]
    fn higher_threshold_is_sparser() {
        let (s, t) = fig1();
        let low = Matcher {
            threshold: 0.4,
            ..Matcher::context()
        }
        .match_schemas(&s, &t);
        let high = Matcher {
            threshold: 0.75,
            ..Matcher::context()
        }
        .match_schemas(&s, &t);
        assert!(high.capacity() <= low.capacity());
    }

    #[test]
    fn fragment_and_context_strategies_differ() {
        let (s, t) = fig1();
        let f = Matcher::fragment().match_schemas(&s, &t);
        let c = Matcher::context().match_schemas(&s, &t);
        // Both find something; exact sets generally differ.
        assert!(!f.is_empty());
        assert!(!c.is_empty());
    }

    #[test]
    fn scores_within_unit_interval() {
        let (s, t) = fig1();
        let m = Matcher::context().match_schemas(&s, &t);
        for c in m.correspondences() {
            assert!((0.0..=1.0 + 1e-9).contains(&c.score));
        }
    }
}
